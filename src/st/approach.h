#ifndef STIX_ST_APPROACH_H_
#define STIX_ST_APPROACH_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/chunk.h"
#include "geo/covering.h"
#include "geo/curve_registry.h"
#include "index/index_descriptor.h"
#include "query/expression.h"

namespace stix::st {

/// Field names of the paper's document schema.
inline constexpr char kLocationField[] = "location";
inline constexpr char kDateField[] = "date";
inline constexpr char kHilbertField[] = "hilbertIndex";

/// The four evaluated methods (paper Section 5.1, "Methodology").
enum class ApproachKind {
  kBslST,    ///< Shard on {date}; compound index {location 2dsphere, date}.
  kBslTS,    ///< Shard on {date}; compound index {date, location 2dsphere}.
  kHil,      ///< hilbertIndex over the globe; shard {hilbertIndex, date}.
  kHilStar,  ///< hilbertIndex over the dataset MBR; shard {hilbertIndex, date}.
};

const char* ApproachName(ApproachKind kind);

/// Tunables shared by the approaches.
struct ApproachConfig {
  ApproachKind kind = ApproachKind::kHil;
  /// Hilbert curve bits per dimension (paper: 13, matching the 26 total bits
  /// of the 2dsphere GeoHash).
  int hilbert_order = 13;
  /// 2dsphere GeoHash precision in total bits (MongoDB default 26).
  int geohash_bits = 26;
  /// MBR of the data set; only consulted by kHilStar.
  geo::Rect dataset_mbr = geo::GlobeRect();
  /// 1D linearization behind the hilbertIndex field (curve approaches
  /// only). The field name and its Int64 KeyString encoding are shared by
  /// every curve — d < 4^order <= 2^32 always fits — so switching curves
  /// changes key *values*, never key shapes.
  geo::CurveKind curve_kind = geo::CurveKind::kHilbert;
  /// Point sample the EntropyGeoHash mapping fits its equi-depth cell
  /// boundaries from (ignored by other curves; empty = uniform boundaries,
  /// i.e. plain GeoHash cells).
  std::vector<geo::Point> curve_fit_sample;
  /// Covering/translation cache capacity in entries (LRU eviction beyond
  /// it); 0 disables memoization entirely. Bounds the cache under workloads
  /// with unboundedly many distinct query rects.
  size_t cover_cache_capacity = 4096;
  /// Adaptive curve-covering budget (Hilbert approaches only): when the
  /// store can estimate a query's selectivity from the shard histograms,
  /// low-selectivity rects — ones expected to touch more than
  /// `coarse_cover_fraction` of the data — are covered with at most
  /// `coarse_cover_max_ranges` ranges (a coarser superset: fewer seeks and
  /// far less covering work, and still exact because the residual
  /// $geoWithin + date predicates refine at FETCH), while hot small rects
  /// keep the exact covering. Off, or an unknown selectivity, always uses
  /// the exact covering.
  bool adaptive_cover_budget = true;
  size_t coarse_cover_max_ranges = 64;
  double coarse_cover_fraction = 0.02;
};

/// A spatio-temporal range query translated into the store's match language,
/// plus the cost of the curve-covering step (reported separately by the
/// paper's Table 8 and excluded from its execution-time figures).
struct TranslatedQuery {
  query::ExprPtr expr;
  double cover_millis = 0.0;  ///< Time spent in CoverRect (0 for baselines).
  size_t num_ranges = 0;      ///< Width->1 ranges in the $or.
  size_t num_singletons = 0;  ///< Cells that went into the $in.
  /// True when the covering + expression came out of the approach's
  /// translation cache instead of being recomputed (cover_millis is then
  /// the hash-lookup time, effectively zero).
  bool cache_hit = false;
  /// Covering budget the translation used: 0 = exact covering, otherwise
  /// the max_ranges cap a coarse (adaptive) covering was computed under.
  size_t cover_budget = 0;
};

/// Hit/miss/eviction counters of the covering & translation cache.
struct CoverCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Strategy object tying together everything one approach defines: how to
/// shard, which indexes to build, how to enrich documents, how to phrase
/// queries, and which field zones are keyed on (paper Section 4).
class Approach {
 public:
  explicit Approach(const ApproachConfig& config);

  const ApproachConfig& config() const { return config_; }
  ApproachKind kind() const { return config_.kind; }
  const char* name() const { return ApproachName(config_.kind); }
  bool uses_hilbert() const {
    return config_.kind == ApproachKind::kHil ||
           config_.kind == ApproachKind::kHilStar;
  }

  /// Shard key ({date} for baselines, {hilbertIndex, date} for Hilbert).
  cluster::ShardKeyPattern shard_key() const;

  /// Secondary indexes beyond the shard-key and _id indexes (the baselines'
  /// compound 2dsphere index; none for the Hilbert approaches).
  std::vector<index::IndexDescriptor> secondary_indexes() const;

  /// Adds the hilbertIndex field for Hilbert approaches; no-op otherwise.
  /// Fails if the location field is not a GeoJSON point.
  Status EnrichDocument(bson::Document* doc) const;

  /// Rect + closed time interval -> the approach's query document
  /// (baselines: $geoWithin + date range; Hilbert: plus the $or over
  /// covering ranges / $in over single cells — Section 4.2.2).
  ///
  /// Translations are memoized per (rect, time window): repeated query
  /// shapes (warm bench runs, periodic workload queries) skip the Hilbert
  /// covering entirely and reuse the immutable translated expression. The
  /// paper's Table 8 treats covering as a per-query cost; with the cache it
  /// is paid once per distinct query. Thread-safe.
  /// `max_ranges` caps the covering's range count (0 = exact covering);
  /// StStore derives it per query via PickCoverBudget. Distinct budgets
  /// memoize separately (the budget is part of the cache key).
  TranslatedQuery TranslateQuery(const geo::Rect& rect, int64_t t_begin_ms,
                                 int64_t t_end_ms,
                                 size_t max_ranges = 0) const;

  /// The covering budget for a query expected to select `est_fraction`
  /// (0..1) of the stored documents: coarse_cover_max_ranges when the
  /// adaptive budget is on and the fraction crosses coarse_cover_fraction,
  /// else 0 (exact). A negative fraction means unknown — exact covering.
  size_t PickCoverBudget(double est_fraction) const;

  /// Polygon variant (the paper's complex-geometry future-work item): same
  /// covering machinery, exact point-in-polygon refinement.
  TranslatedQuery TranslatePolygonQuery(const geo::Polygon& polygon,
                                        int64_t t_begin_ms,
                                        int64_t t_end_ms) const;

  /// Field zones are defined on ("date" / "hilbertIndex"), Section 4.x.3.
  std::string zone_path() const;

  /// The curve behind hilbertIndex (null for baselines). The snapshot stays
  /// valid across a concurrent RefitCurve — callers keep the mapping they
  /// grabbed; new translations pick up the new one.
  std::shared_ptr<const geo::Curve2D> curve() const;

  /// Monotone mapping generation: 0 at construction, bumped by every
  /// RefitCurve. Part of the cover-cache key, so covers computed against an
  /// older mapping can never be served after a refit.
  uint64_t curve_generation() const;

  /// EntropyGeoHash approaches only: swaps in a mapping refitted from
  /// `sample` and bumps the mapping generation (invalidating every cached
  /// cover). Documents enriched before the refit keep their old
  /// hilbertIndex values — refitting a *loaded* store needs a
  /// Reshard-style re-enrichment, so stores fit once before load instead.
  Status RefitCurve(const std::vector<geo::Point>& sample);

  /// Covering/translation cache counters (cumulative for this approach
  /// instance).
  CoverCacheStats cover_cache_stats() const {
    return CoverCacheStats{cache_hits_.load(std::memory_order_relaxed),
                           cache_misses_.load(std::memory_order_relaxed),
                           cache_evictions_.load(std::memory_order_relaxed)};
  }

  /// Entries currently memoized (for tests/diagnostics).
  size_t cover_cache_size() const;

  void ClearCoverCache() const;

 private:
  /// Cache key: the exact rect coordinates, time window, and the identity
  /// of the mapping the cover was computed under. Curve kind and mapping
  /// generation join the key because curves are pluggable and EGeoHash
  /// refits change cell boundaries — a cover cached for one mapping must
  /// never be served for another.
  struct CacheKey {
    double lo_lon, lo_lat, hi_lon, hi_lat;
    int64_t t_begin_ms, t_end_ms;
    uint64_t max_ranges;  ///< Covering budget (0 = exact).
    uint32_t curve_kind;  ///< geo::CurveKind of the translating curve.
    uint64_t curve_gen;   ///< Mapping generation (RefitCurve bumps it).

    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const;
  };

  /// `curve` is the caller's atomic (curve, generation) snapshot — null for
  /// baselines. Taking it once in the caller keeps the cover and the
  /// cache-key generation consistent under a concurrent RefitCurve.
  TranslatedQuery TranslateRegionQuery(query::ExprPtr geo_predicate,
                                       const geo::Region& region,
                                       int64_t t_begin_ms, int64_t t_end_ms,
                                       size_t max_ranges,
                                       const geo::Curve2D* curve) const;

  ApproachConfig config_;
  /// The curve behind hilbertIndex plus its refit generation, both under
  /// curve_mu_ (refits swap the pointer; readers snapshot it).
  mutable std::mutex curve_mu_;
  std::shared_ptr<const geo::Curve2D> curve_;
  uint64_t curve_generation_ = 0;

  /// Memoized rect translations as a bounded LRU: a recency list of
  /// (key, value) pairs plus an index into it. A hit splices its entry to
  /// the front; an insert beyond capacity evicts from the back. Values hold
  /// immutable shared expressions, so concurrent readers can share them
  /// freely. Guarded by cache_mu_; counters are atomics so stats reads
  /// never block translation.
  using CacheEntry = std::pair<CacheKey, TranslatedQuery>;
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cover_cache_lru_;
  mutable std::unordered_map<CacheKey, std::list<CacheEntry>::iterator,
                             CacheKeyHash>
      cover_cache_;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> cache_evictions_{0};
};

}  // namespace stix::st

#endif  // STIX_ST_APPROACH_H_
