#ifndef STIX_ST_ADAPTIVE_H_
#define STIX_ST_ADAPTIVE_H_

#include <vector>

#include "st/st_store.h"

namespace stix::st {

/// One entry of a historical query workload: a spatio-temporal range and
/// its relative frequency.
struct WorkloadQuery {
  geo::Rect rect;
  int64_t t_begin_ms = 0;
  int64_t t_end_ms = 0;
  double weight = 1.0;
};

/// Knobs of the workload-aware zone computation.
struct AdaptiveZoneOptions {
  /// Documents sampled for the load estimate (0 = use all documents).
  size_t sample_limit = 100000;
  /// Baseline weight every document carries even if no workload query
  /// touches it, so cold data still spreads across shards.
  double background_weight = 0.05;
  uint64_t seed = 97;
};

/// The paper's closing future-work item ("an adaptive, workload-aware
/// mechanism for indexing and partitioning"): instead of $bucketAuto's
/// equi-*count* zone boundaries, compute equi-*load* boundaries — each
/// document's weight is the summed frequency of the workload queries that
/// match it, and zones split the shard-key-prefix space into equal-weight
/// slices. Hot regions get spread over more shards; cold regions share one.
///
/// Returns one zone per shard on the approach's zone path (hilbertIndex for
/// the Hilbert approaches, date for the baselines), ready for
/// Cluster::SetZones. Zones may be fewer than shards under extreme skew
/// (identical boundary values collapse).
Result<std::vector<cluster::ZoneRange>> ComputeWorkloadAwareZones(
    const StStore& store, const std::vector<WorkloadQuery>& workload,
    const AdaptiveZoneOptions& options = {});

/// Convenience: compute and apply (migrates data).
Status ApplyWorkloadAwareZones(StStore* store,
                               const std::vector<WorkloadQuery>& workload,
                               const AdaptiveZoneOptions& options = {});

}  // namespace stix::st

#endif  // STIX_ST_ADAPTIVE_H_
