#include "st/knn.h"

#include <algorithm>

namespace stix::st {

KnnResult KnnQuery(const StStore& store, geo::Point center,
                   int64_t t_begin_ms, int64_t t_end_ms,
                   const KnnOptions& options) {
  KnnResult result;
  double radius_m = options.initial_radius_m;

  for (int round = 0; round <= options.max_expansions; ++round) {
    const geo::Rect ring = geo::RectAroundPoint(center, radius_m);
    const StQueryResult query =
        store.Query(ring, t_begin_ms, t_end_ms);
    ++result.queries_issued;
    result.total_keys_examined += query.cluster.total_keys_examined;

    std::vector<Neighbor> candidates;
    candidates.reserve(query.cluster.docs.size());
    for (const bson::Document& doc : query.cluster.docs) {
      const bson::Value* loc = doc.Get(kLocationField);
      double lon, lat;
      if (loc == nullptr || !bson::ExtractGeoJsonPoint(*loc, &lon, &lat)) {
        continue;
      }
      candidates.push_back(
          Neighbor{doc, geo::HaversineMeters(center, {lon, lat})});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance_m < b.distance_m;
              });
    if (candidates.size() > options.k) candidates.resize(options.k);

    // Final iff the k-th candidate is certainly closer than anything the
    // square might have missed (i.e. within the inscribed radius), or the
    // square already spans the whole globe / expansion budget.
    const bool covers_everything =
        ring.lo.lon <= -180.0 && ring.hi.lon >= 180.0 &&
        ring.lo.lat <= -90.0 && ring.hi.lat >= 90.0;
    const bool complete =
        candidates.size() >= options.k &&
        candidates.back().distance_m <= radius_m;
    if (complete || covers_everything || round == options.max_expansions) {
      result.neighbors = std::move(candidates);
      return result;
    }
    radius_m *= 2.0;
    ++result.expansions;
  }
  return result;
}

}  // namespace stix::st
