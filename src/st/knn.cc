#include "st/knn.h"

#include <algorithm>

namespace stix::st {
namespace {

// Keeps `best` sorted ascending by distance with at most k entries; a
// candidate no closer than the current k-th is dropped without copying.
void OfferCandidate(Neighbor candidate, size_t k, std::vector<Neighbor>* best) {
  if (best->size() >= k && candidate.distance_m >= best->back().distance_m) {
    return;
  }
  const auto pos = std::upper_bound(
      best->begin(), best->end(), candidate.distance_m,
      [](double d, const Neighbor& n) { return d < n.distance_m; });
  best->insert(pos, std::move(candidate));
  if (best->size() > k) best->pop_back();
}

}  // namespace

KnnResult KnnQuery(const StStore& store, geo::Point center,
                   int64_t t_begin_ms, int64_t t_end_ms,
                   const KnnOptions& options) {
  KnnResult result;
  double radius_m = options.initial_radius_m;
  if (options.seed_from_buckets && store.bucketed()) {
    const std::optional<double> seed =
        store.MinBucketDistanceM(center, t_begin_ms, t_end_ms);
    if (seed.has_value()) radius_m = std::max(radius_m, *seed);
  }

  for (int round = 0; round <= options.max_expansions; ++round) {
    const geo::Rect ring = geo::RectAroundPoint(center, radius_m);

    // Stream the ring probe: batches arrive per shard getMore round and
    // only the k best candidates seen so far are retained. The candidate
    // budget (if any) rides down to the shard executors as a limit, which
    // terminates the probe's index scans early.
    StCursorOptions cursor_options;
    cursor_options.batch_size = options.batch_size;
    cursor_options.limit = options.candidate_budget;
    StCursor cursor =
        store.OpenQuery(ring, t_begin_ms, t_end_ms, cursor_options);
    ++result.queries_issued;

    std::vector<Neighbor> best;
    best.reserve(options.k + 1);
    while (!cursor.exhausted()) {
      for (bson::Document& doc : cursor.NextBatch()) {
        const bson::Value* loc = doc.Get(kLocationField);
        double lon, lat;
        if (loc == nullptr || !bson::ExtractGeoJsonPoint(*loc, &lon, &lat)) {
          continue;
        }
        ++result.candidates_examined;
        OfferCandidate(
            Neighbor{std::move(doc), geo::HaversineMeters(center, {lon, lat})},
            options.k, &best);
      }
    }
    result.total_keys_examined += cursor.Summary().cluster.total_keys_examined;

    // Final iff the k-th candidate is certainly closer than anything the
    // square might have missed (i.e. within the inscribed radius), or the
    // square already spans the whole globe / expansion budget.
    const bool covers_everything =
        ring.lo.lon <= -180.0 && ring.hi.lon >= 180.0 &&
        ring.lo.lat <= -90.0 && ring.hi.lat >= 90.0;
    const bool complete =
        best.size() >= options.k && best.back().distance_m <= radius_m;
    if (complete || covers_everything || round == options.max_expansions) {
      result.neighbors = std::move(best);
      return result;
    }
    radius_m *= 2.0;
    ++result.expansions;
  }
  return result;
}

}  // namespace stix::st
