#ifndef STIX_STORAGE_CHECKPOINT_H_
#define STIX_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/btree.h"
#include "storage/collection.h"

namespace stix::storage {

/// What one shard hands the checkpoint writer per index: the catalog owns
/// the structures, the checkpoint only reads them.
struct IndexDump {
  std::string name;
  bool multikey = false;
  const BTree* btree = nullptr;
};

/// One persisted index, decoded: (KeyString, RecordId) entries in tree
/// order, ready to bulk-insert into a freshly declared index.
struct CheckpointIndexImage {
  std::string name;
  bool multikey = false;
  std::vector<std::pair<std::string, RecordId>> entries;
};

/// A fully decoded checkpoint: the record store image (RecordIds preserved,
/// tombstoned slots left addressable) plus every index image. Recovery
/// installs it, then replays the WAL from `lsn`.
struct CheckpointImage {
  uint64_t lsn = 0;
  RecordId max_record_id = 0;
  Collection collection;
  std::vector<CheckpointIndexImage> indexes;
};

/// Writes `dir`/checkpoint-<lsn>.ckpt atomically: the image streams into a
/// `.tmp` file first and only a complete image is renamed into place, so a
/// crash mid-checkpoint (the checkpointMidWrite fail point) leaves the
/// previous checkpoint untouched and at worst a stray `.tmp`.
///
/// Format (little-endian): magic "STIXCKP1" | u32 version | u64 lsn |
/// u64 max_record_id | u64 num_docs | doc blocks | u32 num_indexes |
/// per index: u32 name_len, name, u8 multikey, u64 num_entries,
/// entry blocks. Blocks reuse the snapshot's LZ'd block-image shape with a
/// CRC32 frame: u32 raw_len | u32 comp_len | u32 crc32(comp) | comp bytes,
/// raw_len == 0 terminating the stream. Doc blocks decompress to repeated
/// (u64 rid | u32 len | BSON); entry blocks to repeated
/// (u32 key_len | key | u64 rid).
Status WriteCheckpoint(const Collection& collection,
                       const std::vector<IndexDump>& indexes, uint64_t lsn,
                       const std::string& dir);

/// Decodes a checkpoint file; Corruption on any checksum/length/count
/// violation (recovery then falls back to the next older checkpoint).
Result<CheckpointImage> LoadCheckpoint(const std::string& path);

/// A checkpoint file recovery may try.
struct CheckpointRef {
  uint64_t lsn = 0;
  std::string path;
};

/// Checkpoint files directly in `dir`, newest (highest LSN) first.
/// `.tmp` leftovers and unrelated files are ignored.
std::vector<CheckpointRef> ListCheckpoints(const std::string& dir);

std::string CheckpointPath(const std::string& dir, uint64_t lsn);

/// Deletes checkpoints with LSN < `keep_lsn` and stray `.tmp` files —
/// called after a new checkpoint is durably in place.
void RemoveStaleCheckpoints(const std::string& dir, uint64_t keep_lsn);

}  // namespace stix::storage

#endif  // STIX_STORAGE_CHECKPOINT_H_
