#include "storage/collection.h"

#include "bson/codec.h"
#include "common/lz.h"

namespace stix::storage {

CollectionStats Collection::ComputeStats() const {
  CollectionStats stats;
  stats.num_documents = records_.num_records();
  stats.logical_bytes = records_.logical_size_bytes();

  std::string block;
  block.reserve(kBlockSize * 2);
  uint64_t compressed = 0;
  records_.ForEach([&](RecordId, const bson::Document& doc) {
    block += bson::EncodeBson(doc);
    if (block.size() >= kBlockSize) {
      compressed += LzCompress(block).size();
      block.clear();
    }
  });
  if (!block.empty()) compressed += LzCompress(block).size();
  stats.compressed_bytes = compressed;
  return stats;
}

}  // namespace stix::storage
