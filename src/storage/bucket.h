#ifndef STIX_STORAGE_BUCKET_H_
#define STIX_STORAGE_BUCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "geo/geo.h"

namespace stix::storage {

/// Shape of the bucketed time-series collection layout (MongoDB's
/// time-series buckets, specialised to the paper's trajectory workload):
/// one stored document per (vehicle, time window[, Hilbert cell]) holding
/// Simple8b-compressed delta-of-delta columns plus bucket-level pruning
/// metadata. Immutable once a store is set up — the widening rewrite, the
/// catalog keys and the codec must all agree on it.
struct BucketLayout {
  /// Time-window width per bucket. Every point in a bucket satisfies
  /// ts in [bucket date, bucket date + window_ms), where the bucket's
  /// time field carries the window's start — the invariant the query
  /// rewrite widens time bounds by.
  int64_t window_ms = 6 * 3600 * 1000;

  /// Seal threshold: an open bucket flushes once it holds this many points.
  uint32_t max_points = 1000;

  /// Points in one bucket share hilbert >> hilbert_shift when use_hilbert
  /// is set, and the bucket's hilbert field carries the cell base — the
  /// invariant the hilbertIndex range widening relies on.
  int hilbert_shift = 12;
  bool use_hilbert = false;

  std::string time_field = "date";
  std::string location_field = "location";
  std::string hilbert_field = "hilbertIndex";
  std::string vehicle_field = "vehicleId";

  /// Start of the window containing `ts` (floor to window_ms, correct for
  /// negative timestamps).
  int64_t WindowBase(int64_t ts) const {
    int64_t q = ts / window_ms;
    if (ts % window_ms < 0) --q;
    return q * window_ms;
  }
};

/// Bucket identity inside the BucketCatalog: which open bucket a point
/// belongs to.
struct BucketKey {
  int64_t vehicle = 0;
  int64_t window = 0;  ///< Window start, ms.
  int64_t cell = 0;    ///< hilbert >> shift, or 0 when not applicable.

  friend bool operator<(const BucketKey& a, const BucketKey& b) {
    if (a.vehicle != b.vehicle) return a.vehicle < b.vehicle;
    if (a.window != b.window) return a.window < b.window;
    return a.cell < b.cell;
  }
  friend bool operator==(const BucketKey& a, const BucketKey& b) {
    return a.vehicle == b.vehicle && a.window == b.window && a.cell == b.cell;
  }
};

/// Pruning metadata of one sealed bucket, decoded without touching the
/// columns: exact time extent, point count, tight MBR and the covering set
/// of hilbertIndex ranges of the points inside.
struct BucketMeta {
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  uint32_t num_points = 0;
  bool has_mbr = false;
  geo::Rect mbr = {{0, 0}, {0, 0}};
  /// Sorted, disjoint closed [lo, hi] ranges of point hilbertIndex values;
  /// empty when the points carried no hilbert field.
  std::vector<std::pair<int64_t, int64_t>> hil_ranges;
};

/// Bucket-document field names (stable across PRs: the golden test pins the
/// full encoding).
inline constexpr char kBucketMetaField[] = "meta";
inline constexpr char kBucketDataField[] = "data";
/// Durable stores only: Int64 array of the catalog-journal LSNs of the
/// points packed into this bucket. Recovery intersects it with the catalog
/// journal to find points that were acknowledged but never reached a
/// flushed bucket. Absent on non-durable stores; ignored by the codec.
inline constexpr char kBucketWalLsnsField[] = "wlsns";

/// True iff this stored document is a bucket (carries the meta + data
/// sub-documents with the codec's version stamp).
bool IsBucketDocument(const bson::Document& doc);

/// Computes the catalog key of one point. Fails when the time field is
/// missing or not a DateTime (bucketed stores require it). A missing
/// vehicle/hilbert field keys as 0.
Result<BucketKey> ComputeBucketKey(const bson::Document& point,
                                   const BucketLayout& layout);

/// Encodes points (all of one BucketKey — same window, same cell) into one
/// bucket document. Reconstruction via DecodeBucket is byte-identical: the
/// original field order and value types of every point are preserved.
Result<bson::Document> EncodeBucket(const std::vector<bson::Document>& points,
                                    const BucketLayout& layout);

/// Reverses EncodeBucket, reproducing the original point documents in
/// insertion order.
Result<std::vector<bson::Document>> DecodeBucket(const bson::Document& bucket,
                                                 const BucketLayout& layout);

/// Decodes only the pruning metadata (no column access).
Result<BucketMeta> ParseBucketMeta(const bson::Document& bucket);

/// The predicate columns of one bucket: exact per-point timestamps and
/// coordinates, decoded without touching the _id column, the position
/// column or the payload residuals. A rect+time predicate evaluated on
/// these is equal to evaluating it on the reconstructed points (the
/// columns are bit-exact), so scans can filter columnar-first and
/// materialize full documents only for matches.
struct BucketTimeLoc {
  std::vector<int64_t> ts;
  /// Empty (not zero-filled) when the bucket has no location column —
  /// callers must fall back to full DecodeBucket for spatial predicates.
  std::vector<double> lon, lat;
};
Result<BucketTimeLoc> DecodeBucketTimeLoc(const bson::Document& bucket);

}  // namespace stix::storage

#endif  // STIX_STORAGE_BUCKET_H_
