#ifndef STIX_STORAGE_COLLECTION_H_
#define STIX_STORAGE_COLLECTION_H_

#include <cstdint>

#include "storage/record_store.h"

namespace stix::storage {

/// Storage statistics mirrored after MongoDB's collStats.
struct CollectionStats {
  uint64_t num_documents = 0;
  uint64_t logical_bytes = 0;     ///< Uncompressed BSON bytes.
  uint64_t compressed_bytes = 0;  ///< After block compression (storageSize).
};

/// One shard-local collection: a record store plus WiredTiger-style storage
/// accounting. Block compression is computed by actually serializing
/// documents into 32 KB blocks and compressing them with the repo's LZ codec
/// (snappy's role in the paper's deployment).
class Collection {
 public:
  Collection() = default;

  RecordStore& records() { return records_; }
  const RecordStore& records() const { return records_; }

  /// Computes full stats; compressed size is O(data) — call from benches and
  /// storage reports, not per query.
  CollectionStats ComputeStats() const;

 private:
  static constexpr size_t kBlockSize = 32 * 1024;

  RecordStore records_;
};

}  // namespace stix::storage

#endif  // STIX_STORAGE_COLLECTION_H_
