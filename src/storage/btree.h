#ifndef STIX_STORAGE_BTREE_H_
#define STIX_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/record_store.h"

namespace stix::storage {

/// An in-memory B+tree from KeyString bytes to RecordIds — the index
/// structure under every MongoDB index (single-field, compound and the
/// GeoHash cells of 2dsphere alike; see the paper's Table 1 and Section 3.1).
///
/// Entries are ordered by (key, rid) so duplicate keys are supported the way
/// MongoDB's non-unique indexes are. Leaves are chained for range scans.
/// `SizeWithPrefixCompression()` accounts storage the way WiredTiger's
/// index prefix compression does, which is what makes the _id index grow
/// after zone migration shuffles insertion order (paper Fig. 14).
class BTree {
 public:
  /// Split thresholds. Small enough to give realistic tree heights at bench
  /// scale, large enough to keep scans cache-friendly.
  static constexpr size_t kMaxLeafEntries = 128;
  static constexpr size_t kMaxInternalChildren = 64;

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  void Insert(std::string_view key, RecordId rid);

  /// Removes one (key, rid) entry; false if not present.
  bool Remove(std::string_view key, RecordId rid);

  /// Forward cursor over (key, rid) entries in order.
  class Cursor {
   public:
    Cursor() = default;

    bool Valid() const { return leaf_ != nullptr; }
    const std::string& key() const;
    RecordId rid() const;
    void Next();

   private:
    friend class BTree;
    struct LeafNodeTag;
    void* leaf_ = nullptr;  // LeafNode*, type-erased to keep the header small
    size_t pos_ = 0;
    void SkipEmptyLeaves();
  };

  /// Cursor at the smallest entry.
  Cursor First() const;

  /// Cursor at the first entry with entry.key >= key.
  Cursor SeekGE(std::string_view key) const;

  /// Cursor at the first entry with (entry.key, entry.rid) >= (key, rid) in
  /// the tree's (key, rid) order — the reposition primitive executor
  /// save/restore uses to resume a scan from its last KeyString after the
  /// tree mutated underneath it.
  Cursor SeekGE(std::string_view key, RecordId rid) const;

  uint64_t num_entries() const { return num_entries_; }

  /// Bytes this index would occupy with WiredTiger-style prefix compression:
  /// within each leaf, every key pays only its suffix after the longest
  /// common prefix with its predecessor, plus fixed per-entry and per-page
  /// overheads.
  uint64_t SizeWithPrefixCompression() const;

  /// Bytes without prefix compression (full keys), for comparison benches.
  uint64_t SizeUncompressed() const;

  int height() const { return height_; }

  /// Internal consistency check for tests: ordering within and across
  /// leaves, separator correctness, entry count. Returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  // If the child split, returns the new right sibling and sets
  // (*split_key, *split_rid) to its first entry.
  std::unique_ptr<Node> InsertRec(Node* node, std::string_view key,
                                  RecordId rid, std::string* split_key,
                                  RecordId* split_rid);

  std::unique_ptr<Node> root_;
  uint64_t num_entries_ = 0;
  int height_ = 1;
};

}  // namespace stix::storage

#endif  // STIX_STORAGE_BTREE_H_
