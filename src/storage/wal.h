#ifndef STIX_STORAGE_WAL_H_
#define STIX_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stix::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the frame checksum of the
/// write-ahead log and the checkpoint block format.
uint32_t Crc32(std::string_view data);

/// What a WAL record describes. Data records (insert/remove/catalog-add)
/// and config records (full topology metadata) share one framing; a commit
/// marker closes each atomic batch and defines the commit horizon.
enum class WalRecordType : uint8_t {
  kInsert = 1,      ///< rid + document BSON into a shard's record store.
  kRemove = 2,      ///< rid out of a shard's record store.
  kCommit = 3,      ///< Batch boundary: everything staged before it commits.
  kCatalogAdd = 4,  ///< Point BSON journaled by the bucket catalog.
  kConfigMeta = 5,  ///< Full cluster metadata BSON (config journal).
};

/// One decoded log record. `rid` is meaningful for kInsert/kRemove;
/// `payload` carries BSON bytes for kInsert/kCatalogAdd/kConfigMeta.
struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint64_t lsn = 0;
  uint64_t rid = 0;
  std::string payload;
};

/// Durability/throughput knobs of one log.
struct WalOptions {
  /// Flush buffered commits to the file every Nth commit (group commit).
  /// 1 = every commit is on disk before it returns, so an acknowledged
  /// write is always durable; N > 1 batches flushes — a crash loses at
  /// most the last N-1 acknowledged commits (the bench quantifies the
  /// throughput side of that trade).
  int sync_every_commits = 1;
};

/// Result of scanning a log file up to its commit horizon.
struct WalScan {
  /// Data records of every fully committed batch, in log order (commit
  /// markers themselves are not included).
  std::vector<WalRecord> committed;
  /// Highest committed LSN (the last commit marker's LSN); 0 if none.
  uint64_t last_lsn = 0;
  /// Byte offset of the commit horizon — everything past it is an
  /// uncommitted or torn tail that recovery discards.
  uint64_t committed_bytes = 0;
  /// True when bytes existed past the horizon (torn frame, bad CRC, or a
  /// batch with no commit marker).
  bool torn = false;
};

/// Scans a log file: validates each frame's length and CRC, groups records
/// into batches, and stops at the first damaged frame. A batch only counts
/// once its commit marker is intact — a torn tail can never surface a
/// partial batch. A missing file reads as an empty log.
Result<WalScan> ReadWal(const std::string& path);

/// A per-shard (or config/catalog) write-ahead log over one append-only
/// file. Frame format, little-endian:
///
///   u32 body_len | u32 crc32(body) | body
///   body = u8 type | u64 lsn | u64 rid | payload
///
/// Writers stage records with Append and seal an atomic batch with
/// Commit(), which frames the staged records plus a kCommit marker.
/// Commits buffer in memory and reach the file on every Nth commit
/// (WalOptions::sync_every_commits) or an explicit Sync — the group-commit
/// window. The file therefore always ends at a frame boundary of fully
/// buffered-out commits; a crash loses only the unflushed window.
///
/// Crash points (FailPoint registry; fire with an error action):
///   walBeforeCommit        — staged record frames reach the file but the
///                            commit marker does not: an uncommitted tail
///                            recovery must discard.
///   walTornTail            — the commit marker is cut mid-frame: a torn
///                            tail recovery must truncate.
///   walAfterCommitBeforeAck— the batch is fully durable but the caller
///                            still sees an error: an unacknowledged write
///                            that MAY legitimately survive recovery.
/// Any crash point kills the log: every later Append/Commit/Sync fails,
/// modeling the process being gone. Thread-safe (internally locked).
class WriteAheadLog {
 public:
  /// Opens `path` for appending. `fresh` truncates (a brand-new store);
  /// otherwise the file is scanned, the torn tail is truncated away, and
  /// the LSN counter resumes after the last committed LSN.
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string path,
                                                     WalOptions options,
                                                     bool fresh);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Stages one record into the current batch; returns its assigned LSN
  /// (the LSN the record will replay under — the bucket catalog journals it
  /// into flushed bucket documents).
  Result<uint64_t> Append(WalRecordType type, uint64_t rid,
                          std::string_view payload);

  /// Seals the staged records into an atomic batch: frames them plus a
  /// commit marker, buffers the bytes, and flushes per the group-commit
  /// window. Returns the commit LSN.
  Result<uint64_t> Commit();

  /// Flushes every buffered commit to the file immediately.
  Status Sync();

  /// Drops all log content (after a checkpoint made it redundant). The LSN
  /// counter keeps counting — LSNs are never reused.
  Status Truncate();

  /// Raises the LSN counter so the next assigned LSN is at least lsn + 1.
  /// Recovery calls this with the highest LSN any *other* durable artifact
  /// references (a shard's checkpoint horizon, a bucket document's wlsns):
  /// the reopened log file may be empty — truncated at exactly that horizon
  /// — and without the floor new records would reuse LSNs at or below it,
  /// which the next recovery's replay filters would silently skip.
  void EnsureLsnPast(uint64_t lsn);

  /// Simulates process death: every later write refuses. ReadWal of the
  /// file sees exactly what was flushed before the kill.
  void Kill();

  bool dead() const;
  uint64_t last_commit_lsn() const;
  /// Bytes of committed frames in the log since the last Truncate
  /// (flushed + buffered) — the checkpoint trigger reads this.
  uint64_t log_bytes() const;
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, WalOptions options);

  Status SyncLocked();
  /// Crash-point helper: flushes `extra` after the buffered tail, then
  /// kills the log. What hit the file is the post-crash durable image.
  void CrashLocked(std::string_view extra);

  const std::string path_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::ofstream file_;
  bool dead_ = false;
  uint64_t next_lsn_ = 1;
  uint64_t last_commit_lsn_ = 0;
  uint64_t log_bytes_ = 0;
  std::vector<WalRecord> staged_;   // appended, not yet committed
  std::string tail_;                // committed frames not yet flushed
  int commits_since_sync_ = 0;
};

}  // namespace stix::storage

#endif  // STIX_STORAGE_WAL_H_
