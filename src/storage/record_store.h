#ifndef STIX_STORAGE_RECORD_STORE_H_
#define STIX_STORAGE_RECORD_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bson/document.h"
#include "common/status.h"

namespace stix::storage {

/// Identifies a record within one shard's record store. 0 is invalid.
using RecordId = uint64_t;
constexpr RecordId kInvalidRecordId = 0;

/// Heap of documents addressed by RecordId — the "collection data" half of a
/// document store (indexes point into it with RecordIds, the FETCH stage
/// reads through it and is what "docsExamined" counts).
class RecordStore {
 public:
  RecordStore() = default;

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  // Moves are hand-written because the generation counter is atomic (moving
  // a store is a single-threaded setup-time operation; borrows never span
  // it).
  RecordStore(RecordStore&& other) noexcept
      : records_(std::move(other.records_)),
        num_records_(other.num_records_),
        logical_size_bytes_(other.logical_size_bytes_),
        generation_(other.generation_.load(std::memory_order_relaxed)) {}
  RecordStore& operator=(RecordStore&& other) noexcept {
    records_ = std::move(other.records_);
    num_records_ = other.num_records_;
    logical_size_bytes_ = other.logical_size_bytes_;
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  /// Stores a document, returning its id.
  RecordId Insert(bson::Document doc);

  /// Returns the live document or nullptr (removed / never existed).
  /// Pointer stability: the returned pointer survives Remove of *other*
  /// records (slots are tombstoned in place) but not Insert, which may
  /// reallocate the slot vector. The zero-copy query pipeline (executor ->
  /// router merge) relies on this window.
  const bson::Document* Get(RecordId id) const;

  /// Removes a record (used by chunk migration); false if already gone.
  bool Remove(RecordId id);

  /// Re-creates a record at a specific id — checkpoint load and WAL replay
  /// must reproduce the exact RecordIds the indexes point at. Grows the
  /// store with tombstoned slots as needed; InvalidArgument for id 0,
  /// AlreadyExists if the slot is live (a replay bug, not a data race).
  Status RestoreAt(RecordId id, bson::Document doc);

  /// Extends the store with tombstoned slots so max_record_id() reaches at
  /// least `id` — recovery uses it to reproduce trailing removed slots, so
  /// post-recovery inserts never reuse a RecordId the WAL already named.
  void PadToRecordId(RecordId id);

  /// Visits live records in RecordId order (collection scan order).
  void ForEach(
      const std::function<void(RecordId, const bson::Document&)>& fn) const;

  uint64_t num_records() const { return num_records_; }

  /// Mutation generation: bumped on every Insert and Remove. Borrowed
  /// `const Document*` handed out by the query pipeline are only guaranteed
  /// valid while the generation is unchanged (Insert may reallocate the slot
  /// vector; Remove kills the removed slot). Debug-mode borrow checks in
  /// `query::ExecutionResult` and the shard/cluster cursors compare a
  /// snapshot of this counter before dereferencing. Atomic so a guard check
  /// racing a writer (which holds the shard's exclusive lock the checker
  /// does not) is still a defined read.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Highest RecordId ever issued (ids are dense from 1; removed slots stay
  /// addressable and return nullptr).
  RecordId max_record_id() const {
    return static_cast<RecordId>(records_.size());
  }

  /// Sum of ApproxBsonSize over live documents — the uncompressed data size.
  uint64_t logical_size_bytes() const { return logical_size_bytes_; }

 private:
  std::vector<std::optional<bson::Document>> records_;
  uint64_t num_records_ = 0;
  uint64_t logical_size_bytes_ = 0;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace stix::storage

#endif  // STIX_STORAGE_RECORD_STORE_H_
