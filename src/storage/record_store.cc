#include "storage/record_store.h"

namespace stix::storage {

RecordId RecordStore::Insert(bson::Document doc) {
  logical_size_bytes_ += doc.ApproxBsonSize();
  ++num_records_;
  generation_.fetch_add(1, std::memory_order_release);
  records_.emplace_back(std::move(doc));
  return static_cast<RecordId>(records_.size());  // ids are 1-based
}

const bson::Document* RecordStore::Get(RecordId id) const {
  if (id == kInvalidRecordId || id > records_.size()) return nullptr;
  const auto& slot = records_[id - 1];
  return slot.has_value() ? &*slot : nullptr;
}

bool RecordStore::Remove(RecordId id) {
  if (id == kInvalidRecordId || id > records_.size()) return false;
  auto& slot = records_[id - 1];
  if (!slot.has_value()) return false;
  logical_size_bytes_ -= slot->ApproxBsonSize();
  --num_records_;
  generation_.fetch_add(1, std::memory_order_release);
  slot.reset();
  return true;
}

Status RecordStore::RestoreAt(RecordId id, bson::Document doc) {
  if (id == kInvalidRecordId) {
    return Status::InvalidArgument("cannot restore record id 0");
  }
  if (id > records_.size()) records_.resize(id);
  auto& slot = records_[id - 1];
  if (slot.has_value()) {
    return Status::AlreadyExists("record id already live during restore");
  }
  logical_size_bytes_ += doc.ApproxBsonSize();
  ++num_records_;
  generation_.fetch_add(1, std::memory_order_release);
  slot.emplace(std::move(doc));
  return Status::OK();
}

void RecordStore::PadToRecordId(RecordId id) {
  if (id > records_.size()) {
    records_.resize(id);
    generation_.fetch_add(1, std::memory_order_release);
  }
}

void RecordStore::ForEach(
    const std::function<void(RecordId, const bson::Document&)>& fn) const {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].has_value()) {
      fn(static_cast<RecordId>(i + 1), *records_[i]);
    }
  }
}

}  // namespace stix::storage
