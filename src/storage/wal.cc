#include "storage/wal.h"

#include <array>
#include <fstream>
#include <utility>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/metrics.h"

namespace stix::storage {
namespace {

// 17 fixed body bytes: u8 type + u64 lsn + u64 rid.
constexpr size_t kBodyHeader = 1 + 8 + 8;
constexpr size_t kFrameHeader = 4 + 4;  // u32 len + u32 crc
// Frames larger than this are treated as corruption by the reader — a
// defense against a damaged length field turning into a giant allocation.
constexpr uint32_t kMaxBodyLen = 64u * 1024 * 1024;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// `u32 len | u32 crc | body` with body = `u8 type | u64 lsn | u64 rid |
/// payload` — the one frame shape shared by writer and reader.
std::string EncodeFrame(const WalRecord& record) {
  std::string body;
  body.reserve(kBodyHeader + record.payload.size());
  body.push_back(static_cast<char>(record.type));
  PutU64(record.lsn, &body);
  PutU64(record.rid, &body);
  body += record.payload;

  std::string frame;
  frame.reserve(kFrameHeader + body.size());
  PutU32(static_cast<uint32_t>(body.size()), &frame);
  PutU32(Crc32(body), &frame);
  frame += body;
  return frame;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// The three crash points of the commit path (see wal.h). Arm with an error
// action; the configured Status is what the dying operation returns.
STIX_FAIL_POINT_DEFINE(walBeforeCommit);
STIX_FAIL_POINT_DEFINE(walAfterCommitBeforeAck);
STIX_FAIL_POINT_DEFINE(walTornTail);

Result<WalScan> ReadWal(const std::string& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return scan;  // no log yet: empty, not an error

  std::vector<WalRecord> batch;
  uint64_t offset = 0;
  for (;;) {
    char header[kFrameHeader];
    if (!in.read(header, sizeof(header))) break;  // clean EOF or torn header
    const uint32_t body_len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (body_len < kBodyHeader || body_len > kMaxBodyLen) break;
    std::string body(body_len, '\0');
    if (!in.read(body.data(), body_len)) break;  // torn body
    if (Crc32(body) != crc) break;               // bit flip anywhere in body

    WalRecord record;
    record.type = static_cast<WalRecordType>(static_cast<uint8_t>(body[0]));
    record.lsn = GetU64(body.data() + 1);
    record.rid = GetU64(body.data() + 9);
    record.payload = body.substr(kBodyHeader);
    offset += kFrameHeader + body_len;

    if (record.type == WalRecordType::kCommit) {
      for (WalRecord& r : batch) scan.committed.push_back(std::move(r));
      batch.clear();
      scan.last_lsn = record.lsn;
      scan.committed_bytes = offset;
    } else {
      batch.push_back(std::move(record));
    }
  }
  const Result<uint64_t> size = FileSize(path);
  scan.torn = size.ok() && *size != scan.committed_bytes;
  return scan;
}

WriteAheadLog::WriteAheadLog(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!dead_ && file_.is_open()) (void)SyncLocked();
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(std::string path,
                                                           WalOptions options,
                                                           bool fresh) {
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(std::move(path), options));
  if (fresh) {
    wal->file_.open(wal->path_, std::ios::binary | std::ios::trunc);
  } else {
    // Scan to the commit horizon and truncate the torn/uncommitted tail
    // away permanently — replaying twice must see the same log.
    Result<WalScan> scan = ReadWal(wal->path_);
    if (!scan.ok()) return scan.status();
    if (FileExists(wal->path_)) {
      const Status s = ResizeFile(wal->path_, scan->committed_bytes);
      if (!s.ok()) return s;
    }
    wal->next_lsn_ = scan->last_lsn + 1;
    wal->last_commit_lsn_ = scan->last_lsn;
    wal->log_bytes_ = scan->committed_bytes;
    wal->file_.open(wal->path_, std::ios::binary | std::ios::app);
  }
  if (!wal->file_.is_open()) {
    return Status::Internal("cannot open wal file: " + wal->path_);
  }
  return wal;
}

Result<uint64_t> WriteAheadLog::Append(WalRecordType type, uint64_t rid,
                                       std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Internal("wal is dead after a simulated crash");
  WalRecord record;
  record.type = type;
  record.lsn = next_lsn_++;
  record.rid = rid;
  record.payload.assign(payload.data(), payload.size());
  const uint64_t lsn = record.lsn;
  staged_.push_back(std::move(record));
  return lsn;
}

void WriteAheadLog::CrashLocked(std::string_view extra) {
  // The durable image a real crash would leave: the buffered tail plus
  // `extra` (with sync-every-commit the tail is always empty and `extra`
  // is the whole delta). Flushing the tail keeps the crash conservative —
  // losing MORE than the OS would lose is modeled by group-commit tests
  // truncating the file to a pre-sync size instead.
  file_.write(tail_.data(), static_cast<std::streamsize>(tail_.size()));
  file_.write(extra.data(), static_cast<std::streamsize>(extra.size()));
  file_.flush();
  tail_.clear();
  dead_ = true;
  staged_.clear();
  STIX_METRIC_COUNTER(crashes, "wal.simulated_crashes");
  crashes.Increment();
}

Result<uint64_t> WriteAheadLog::Commit() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Internal("wal is dead after a simulated crash");
  if (staged_.empty()) return last_commit_lsn_;

  std::string batch;
  for (const WalRecord& record : staged_) batch += EncodeFrame(record);

  // Crash point 1: the batch's record frames reach the file, the commit
  // marker never does. Recovery sees an uncommitted tail and discards it.
  if (Status s = CheckFailPoint(walBeforeCommit); !s.ok()) {
    CrashLocked(batch);
    return s;
  }

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.lsn = next_lsn_++;
  const std::string commit_frame = EncodeFrame(commit);

  // Crash point 2: the commit marker is cut mid-frame — a torn write.
  // Recovery must CRC-reject the partial frame and truncate it away.
  if (Status s = CheckFailPoint(walTornTail); !s.ok()) {
    CrashLocked(batch + commit_frame.substr(0, commit_frame.size() / 2));
    return s;
  }

  tail_ += batch;
  tail_ += commit_frame;
  log_bytes_ += batch.size() + commit_frame.size();
  last_commit_lsn_ = commit.lsn;
  staged_.clear();
  ++commits_since_sync_;

  STIX_METRIC_COUNTER(commits, "wal.commits");
  commits.Increment();

  // Crash point 3: the batch is fully durable (flushed, marker intact) but
  // the acknowledgment never reaches the caller. The write MAY survive
  // recovery — the oracle's "uncertain" class.
  if (Status s = CheckFailPoint(walAfterCommitBeforeAck); !s.ok()) {
    CrashLocked({});
    return s;
  }

  if (commits_since_sync_ >= options_.sync_every_commits) {
    if (Status s = SyncLocked(); !s.ok()) return s;
  }
  return commit.lsn;
}

Status WriteAheadLog::SyncLocked() {
  if (!tail_.empty()) {
    file_.write(tail_.data(), static_cast<std::streamsize>(tail_.size()));
    STIX_METRIC_COUNTER(bytes, "wal.bytes_written");
    bytes.Increment(tail_.size());
    tail_.clear();
  }
  file_.flush();
  commits_since_sync_ = 0;
  if (!file_.good()) {
    return Status::Internal("wal write failed: " + path_);
  }
  STIX_METRIC_COUNTER(syncs, "wal.syncs");
  syncs.Increment();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Internal("wal is dead after a simulated crash");
  return SyncLocked();
}

Status WriteAheadLog::Truncate() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Internal("wal is dead after a simulated crash");
  file_.close();
  file_.open(path_, std::ios::binary | std::ios::trunc);
  tail_.clear();
  staged_.clear();
  log_bytes_ = 0;
  commits_since_sync_ = 0;
  if (!file_.is_open()) {
    return Status::Internal("cannot reopen wal file: " + path_);
  }
  STIX_METRIC_COUNTER(truncates, "wal.truncates");
  truncates.Increment();
  return Status::OK();
}

void WriteAheadLog::EnsureLsnPast(uint64_t lsn) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (next_lsn_ <= lsn) next_lsn_ = lsn + 1;
  // Keep last_commit_lsn() monotonic across recoveries too — a checkpoint
  // taken right after recovery must not carry an LSN below the horizon of
  // the checkpoint it was recovered from.
  if (last_commit_lsn_ < lsn) last_commit_lsn_ = lsn;
}

void WriteAheadLog::Kill() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;
  CrashLocked({});
}

bool WriteAheadLog::dead() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t WriteAheadLog::last_commit_lsn() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_commit_lsn_;
}

uint64_t WriteAheadLog::log_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return log_bytes_;
}

}  // namespace stix::storage
