#include "storage/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "bson/codec.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/lz.h"
#include "common/metrics.h"
#include "storage/wal.h"

namespace stix::storage {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'I', 'X', 'C', 'K', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kBlockTarget = 256 * 1024;
constexpr uint32_t kMaxBlockLen = 64u * 1024 * 1024;
constexpr char kSuffix[] = ".ckpt";

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU32(std::istream* in, uint32_t* v) {
  char buf[4];
  if (!in->read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

bool GetU64(std::istream* in, uint64_t* v) {
  char buf[8];
  if (!in->read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return true;
}

uint32_t GetU32Mem(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64Mem(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Accumulates a raw byte stream and flushes it as LZ'd CRC-framed blocks.
/// Every flush evaluates checkpointMidWrite — the crash point that leaves a
/// partial `.tmp` behind.
class BlockWriter {
 public:
  explicit BlockWriter(std::ofstream* out) : out_(out) {}

  Status Add(std::string_view bytes) {
    buf_.append(bytes.data(), bytes.size());
    if (buf_.size() >= kBlockTarget) return Flush();
    return Status::OK();
  }

  /// Flushes the remainder and writes the raw_len == 0 terminator.
  Status Finish() {
    if (!buf_.empty()) {
      if (Status s = Flush(); !s.ok()) return s;
    }
    std::string terminator;
    PutU32(0, &terminator);
    out_->write(terminator.data(),
                static_cast<std::streamsize>(terminator.size()));
    return Status::OK();
  }

 private:
  Status Flush();

  std::ofstream* out_;
  std::string buf_;
};

std::string ParseLsnFromName(const std::string& path, uint64_t* lsn) {
  // dir/checkpoint-<lsn>.ckpt
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  constexpr char kPrefix[] = "checkpoint-";
  if (name.rfind(kPrefix, 0) != 0) return "";
  const size_t suffix_at = name.size() - (sizeof(kSuffix) - 1);
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1 ||
      name.compare(suffix_at, std::string::npos, kSuffix) != 0) {
    return "";
  }
  const std::string digits =
      name.substr(sizeof(kPrefix) - 1, suffix_at - (sizeof(kPrefix) - 1));
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return "";
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *lsn = value;
  return name;
}

/// Reads one block stream (until the raw_len == 0 terminator) and returns
/// the concatenated raw bytes.
Result<std::string> ReadBlocks(std::istream* in) {
  std::string raw;
  for (;;) {
    uint32_t raw_len;
    if (!GetU32(in, &raw_len)) {
      return Status::Corruption("checkpoint: truncated block header");
    }
    if (raw_len == 0) return raw;
    uint32_t comp_len, crc;
    if (!GetU32(in, &comp_len) || !GetU32(in, &crc)) {
      return Status::Corruption("checkpoint: truncated block header");
    }
    if (raw_len > kMaxBlockLen || comp_len > kMaxBlockLen) {
      return Status::Corruption("checkpoint: implausible block length");
    }
    std::string compressed(comp_len, '\0');
    if (!in->read(compressed.data(), comp_len)) {
      return Status::Corruption("checkpoint: truncated block body");
    }
    if (Crc32(compressed) != crc) {
      return Status::Corruption("checkpoint: block checksum mismatch");
    }
    Result<std::string> block = LzDecompress(compressed);
    if (!block.ok()) return block.status();
    if (block->size() != raw_len) {
      return Status::Corruption("checkpoint: block length mismatch");
    }
    raw += *block;
  }
}

}  // namespace

// Armed by recovery tests/fuzzing with an error action; each fired flush
// aborts the checkpoint write mid-file.
STIX_FAIL_POINT_DEFINE(checkpointMidWrite);

Status BlockWriter::Flush() {
  if (Status s = CheckFailPoint(checkpointMidWrite); !s.ok()) {
    // Simulated crash mid-checkpoint: whatever already streamed out stays
    // in the .tmp file, exactly like a torn real write.
    out_->flush();
    return s;
  }
  const std::string compressed = LzCompress(buf_);
  std::string header;
  PutU32(static_cast<uint32_t>(buf_.size()), &header);
  PutU32(static_cast<uint32_t>(compressed.size()), &header);
  PutU32(Crc32(compressed), &header);
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
  out_->write(compressed.data(),
              static_cast<std::streamsize>(compressed.size()));
  buf_.clear();
  return Status::OK();
}

std::string CheckpointPath(const std::string& dir, uint64_t lsn) {
  return dir + "/checkpoint-" + std::to_string(lsn) + kSuffix;
}

Status WriteCheckpoint(const Collection& collection,
                       const std::vector<IndexDump>& indexes, uint64_t lsn,
                       const std::string& dir) {
  const std::string final_path = CheckpointPath(dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot create checkpoint file: " + tmp_path);
  }

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(kVersion, &header);
  PutU64(lsn, &header);
  PutU64(collection.records().max_record_id(), &header);
  PutU64(collection.records().num_records(), &header);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  BlockWriter docs(&out);
  Status doc_status = Status::OK();
  collection.records().ForEach(
      [&](RecordId rid, const bson::Document& doc) {
        if (!doc_status.ok()) return;
        std::string entry;
        const std::string bytes = bson::EncodeBson(doc);
        PutU64(rid, &entry);
        PutU32(static_cast<uint32_t>(bytes.size()), &entry);
        entry += bytes;
        doc_status = docs.Add(entry);
      });
  if (doc_status.ok()) doc_status = docs.Finish();
  if (!doc_status.ok()) return doc_status;

  std::string index_count;
  PutU32(static_cast<uint32_t>(indexes.size()), &index_count);
  out.write(index_count.data(),
            static_cast<std::streamsize>(index_count.size()));
  for (const IndexDump& dump : indexes) {
    std::string index_header;
    PutU32(static_cast<uint32_t>(dump.name.size()), &index_header);
    index_header += dump.name;
    index_header.push_back(dump.multikey ? 1 : 0);
    PutU64(dump.btree->num_entries(), &index_header);
    out.write(index_header.data(),
              static_cast<std::streamsize>(index_header.size()));
    BlockWriter entries(&out);
    for (BTree::Cursor cur = dump.btree->First(); cur.Valid(); cur.Next()) {
      std::string entry;
      PutU32(static_cast<uint32_t>(cur.key().size()), &entry);
      entry += cur.key();
      PutU64(cur.rid(), &entry);
      if (Status s = entries.Add(entry); !s.ok()) return s;
    }
    if (Status s = entries.Finish(); !s.ok()) return s;
  }

  out.flush();
  if (!out.good()) {
    return Status::Internal("checkpoint write failed: " + tmp_path);
  }
  out.close();

  // Only a complete image is renamed into place — the atomicity boundary.
  if (Status s = RenameFile(tmp_path, final_path); !s.ok()) return s;
  STIX_METRIC_COUNTER(written, "checkpoint.written");
  written.Increment();
  return Status::OK();
}

Result<CheckpointImage> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open checkpoint file: " + path);
  }
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a STIX checkpoint: " + path);
  }
  uint32_t version;
  if (!GetU32(&in, &version) || version != kVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  CheckpointImage image;
  uint64_t num_docs;
  if (!GetU64(&in, &image.lsn) || !GetU64(&in, &image.max_record_id) ||
      !GetU64(&in, &num_docs)) {
    return Status::Corruption("checkpoint: truncated header");
  }

  Result<std::string> doc_stream = ReadBlocks(&in);
  if (!doc_stream.ok()) return doc_stream.status();
  size_t offset = 0;
  uint64_t restored = 0;
  while (offset < doc_stream->size()) {
    if (offset + 12 > doc_stream->size()) {
      return Status::Corruption("checkpoint: truncated document entry");
    }
    const uint64_t rid = GetU64Mem(doc_stream->data() + offset);
    const uint32_t len = GetU32Mem(doc_stream->data() + offset + 8);
    offset += 12;
    if (offset + len > doc_stream->size()) {
      return Status::Corruption("checkpoint: truncated document body");
    }
    Result<bson::Document> doc =
        bson::DecodeBson(std::string_view(doc_stream->data() + offset, len));
    if (!doc.ok()) return doc.status();
    offset += len;
    if (Status s = image.collection.records().RestoreAt(rid, std::move(*doc));
        !s.ok()) {
      return s;
    }
    ++restored;
  }
  if (restored != num_docs) {
    return Status::Corruption("checkpoint: document count mismatch");
  }
  image.collection.records().PadToRecordId(image.max_record_id);

  uint32_t num_indexes;
  if (!GetU32(&in, &num_indexes)) {
    return Status::Corruption("checkpoint: truncated index count");
  }
  for (uint32_t i = 0; i < num_indexes; ++i) {
    CheckpointIndexImage index;
    uint32_t name_len;
    if (!GetU32(&in, &name_len) || name_len > 4096) {
      return Status::Corruption("checkpoint: truncated index header");
    }
    index.name.resize(name_len);
    char multikey;
    uint64_t num_entries;
    if (!in.read(index.name.data(), name_len) || !in.read(&multikey, 1) ||
        !GetU64(&in, &num_entries)) {
      return Status::Corruption("checkpoint: truncated index header");
    }
    index.multikey = multikey != 0;

    Result<std::string> entry_stream = ReadBlocks(&in);
    if (!entry_stream.ok()) return entry_stream.status();
    size_t pos = 0;
    while (pos < entry_stream->size()) {
      if (pos + 4 > entry_stream->size()) {
        return Status::Corruption("checkpoint: truncated index entry");
      }
      const uint32_t key_len = GetU32Mem(entry_stream->data() + pos);
      pos += 4;
      if (pos + key_len + 8 > entry_stream->size()) {
        return Status::Corruption("checkpoint: truncated index entry");
      }
      std::string key(entry_stream->data() + pos, key_len);
      pos += key_len;
      const uint64_t rid = GetU64Mem(entry_stream->data() + pos);
      pos += 8;
      index.entries.emplace_back(std::move(key), rid);
    }
    if (index.entries.size() != num_entries) {
      return Status::Corruption("checkpoint: index entry count mismatch");
    }
    image.indexes.push_back(std::move(index));
  }
  return image;
}

std::vector<CheckpointRef> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointRef> out;
  for (const std::string& path : ListDir(dir)) {
    uint64_t lsn = 0;
    if (ParseLsnFromName(path, &lsn).empty()) continue;
    out.push_back(CheckpointRef{lsn, path});
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) {
              return a.lsn > b.lsn;
            });
  return out;
}

void RemoveStaleCheckpoints(const std::string& dir, uint64_t keep_lsn) {
  for (const std::string& path : ListDir(dir)) {
    if (path.size() > 4 && path.compare(path.size() - 4, 4, ".tmp") == 0) {
      (void)RemoveFile(path);
      continue;
    }
    uint64_t lsn = 0;
    if (ParseLsnFromName(path, &lsn).empty()) continue;
    if (lsn < keep_lsn) (void)RemoveFile(path);
  }
}

}  // namespace stix::storage
