#include "storage/bucket_catalog.h"

#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace stix::storage {

// Fires at the start of every bucket flush (seal, eviction or FlushAll).
// An error action fails the flush: the bucket stays buffered and the error
// surfaces to the inserting/querying caller — eventual consistency is
// restored by the next flush, which the fuzz harness verifies.
STIX_FAIL_POINT_DEFINE(bucketCatalogFlush);

BucketCatalog::BucketCatalog(BucketLayout layout, BucketCatalogOptions options,
                             FlushFn flush)
    : layout_(std::move(layout)),
      options_(options),
      flush_(std::move(flush)) {
  // Pre-register the bucket metrics so ServerStatus shows them from the
  // first snapshot, not from the first flush/unpack.
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("bucket.buckets_flushed");
  registry.GetCounter("bucket.bytes_logical");
  registry.GetCounter("bucket.bytes_encoded");
  registry.GetCounter("bucket.buckets_pruned");
  registry.GetCounter("bucket.points_unpacked");
  registry.GetGauge("bucket.compression_ratio");
  registry.GetGauge("bucket.open_buckets");
}

Status BucketCatalog::Add(bson::Document point, uint64_t wal_lsn) {
  Result<BucketKey> key = ComputeBucketKey(point, layout_);
  if (!key.ok()) return key.status();

  const std::lock_guard<std::mutex> lock(mu_);
  OpenBucket& bucket = open_[*key];
  bucket.raw_bytes += point.ApproxBsonSize();
  bucket.last_touch = ++tick_;
  bucket.points.push_back(std::move(point));
  bucket.lsns.push_back(wal_lsn);
  ++points_open_;
  STIX_METRIC_GAUGE(open_gauge, "bucket.open_buckets");
  open_gauge.Set(static_cast<int64_t>(open_.size()));

  if (bucket.points.size() >= layout_.max_points) {
    return FlushOneLocked(*key);
  }
  if (open_.size() > options_.max_open_buckets) {
    // Evict the least-recently-touched bucket (never the one just fed).
    const BucketKey* lru = nullptr;
    uint64_t lru_touch = 0;
    for (const auto& [k, b] : open_) {
      if (k == *key) continue;
      if (lru == nullptr || b.last_touch < lru_touch) {
        lru = &k;
        lru_touch = b.last_touch;
      }
    }
    if (lru != nullptr) return FlushOneLocked(*lru);
  }
  return Status::OK();
}

Status BucketCatalog::FlushAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  while (!open_.empty()) {
    const Status s = FlushOneLocked(open_.begin()->first);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BucketCatalog::FlushOneLocked(const BucketKey& key) {
  const auto it = open_.find(key);
  if (it == open_.end()) return Status::OK();

  if (Status s = CheckFailPoint(bucketCatalogFlush); !s.ok()) return s;

  Result<bson::Document> bucket = EncodeBucket(it->second.points, layout_);
  if (!bucket.ok()) return bucket.status();
  // Durable stores stamp the bucket with its points' journal LSNs so
  // recovery knows these points survived in flushed form.
  bool any_lsn = false;
  for (const uint64_t lsn : it->second.lsns) any_lsn |= (lsn != 0);
  if (any_lsn) {
    bson::Array lsns;
    lsns.reserve(it->second.lsns.size());
    for (const uint64_t lsn : it->second.lsns) {
      lsns.push_back(bson::Value::Int64(static_cast<int64_t>(lsn)));
    }
    bucket->Append(kBucketWalLsnsField, bson::Value::MakeArray(std::move(lsns)));
  }
  const uint64_t encoded_bytes = bucket->ApproxBsonSize();
  const uint64_t raw_bytes = it->second.raw_bytes;
  const size_t num_points = it->second.points.size();

  if (Status s = flush_(std::move(*bucket)); !s.ok()) return s;

  points_open_ -= num_points;
  open_.erase(it);
  ++flushed_;

  STIX_METRIC_COUNTER(flushed_counter, "bucket.buckets_flushed");
  STIX_METRIC_COUNTER(logical_counter, "bucket.bytes_logical");
  STIX_METRIC_COUNTER(encoded_counter, "bucket.bytes_encoded");
  STIX_METRIC_GAUGE(ratio_gauge, "bucket.compression_ratio");
  STIX_METRIC_GAUGE(open_gauge, "bucket.open_buckets");
  flushed_counter.Increment();
  logical_counter.Increment(raw_bytes);
  encoded_counter.Increment(encoded_bytes);
  // Cumulative logical/encoded ratio, scaled by 100 (a gauge holds ints):
  // 520 means the layout is compressing 5.2x.
  const uint64_t total_logical = logical_counter.value();
  const uint64_t total_encoded = encoded_counter.value();
  if (total_encoded > 0) {
    ratio_gauge.Set(static_cast<int64_t>(total_logical * 100 / total_encoded));
  }
  open_gauge.Set(static_cast<int64_t>(open_.size()));
  return Status::OK();
}

size_t BucketCatalog::open_buckets() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

uint64_t BucketCatalog::points_buffered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return points_open_;
}

uint64_t BucketCatalog::buckets_flushed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flushed_;
}

}  // namespace stix::storage
