#ifndef STIX_STORAGE_BUCKET_CATALOG_H_
#define STIX_STORAGE_BUCKET_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "storage/bucket.h"

namespace stix::storage {

struct BucketCatalogOptions {
  /// Open-bucket cap; past it the least-recently-touched bucket seals even
  /// if short (bounds writer memory under many concurrent vehicles).
  size_t max_open_buckets = 1024;
};

/// The write path of the bucketed layout (MongoDB's BucketCatalog, scaled
/// down): live inserts buffer into open buckets keyed by
/// (vehicle, window[, hilbert cell]); a bucket seals — encodes and hands the
/// bucket document to the flush callback — when it reaches
/// BucketLayout::max_points, when the open-bucket cap evicts it, or on
/// FlushAll() (which query paths call first, so buffered points are always
/// visible to readers).
///
/// A failed flush (the bucketCatalogFlush fail point, or a downstream
/// insert error) leaves the bucket buffered and surfaces the error to the
/// caller; a later flush retries, so no points are ever lost.
///
/// Thread-safe. The flush callback runs under the catalog mutex; it may
/// take cluster/shard locks (nothing in the cluster calls back into the
/// catalog).
class BucketCatalog {
 public:
  using FlushFn = std::function<Status(bson::Document bucket)>;

  BucketCatalog(BucketLayout layout, BucketCatalogOptions options,
                FlushFn flush);

  const BucketLayout& layout() const { return layout_; }

  /// Buffers one point; may seal and flush this (or an evicted) bucket.
  /// `wal_lsn` (nonzero on durable stores) is the catalog-journal LSN that
  /// acknowledged the point; the sealed bucket document carries the LSNs of
  /// its points in a kBucketWalLsnsField array so recovery can tell which
  /// journaled points already reached a flushed bucket.
  Status Add(bson::Document point, uint64_t wal_lsn = 0);

  /// Seals and flushes every open bucket. Stops at the first error (the
  /// failed bucket and all later ones stay buffered).
  Status FlushAll();

  size_t open_buckets() const;
  uint64_t points_buffered() const;
  uint64_t buckets_flushed() const;

 private:
  struct OpenBucket {
    std::vector<bson::Document> points;
    /// Catalog-journal LSN per point; all-zero (and omitted from the
    /// bucket document) on non-durable stores.
    std::vector<uint64_t> lsns;
    uint64_t raw_bytes = 0;  ///< Sum of the points' ApproxBsonSize.
    uint64_t last_touch = 0;
  };

  Status FlushOneLocked(const BucketKey& key);

  const BucketLayout layout_;
  const BucketCatalogOptions options_;
  const FlushFn flush_;

  mutable std::mutex mu_;
  std::map<BucketKey, OpenBucket> open_;
  uint64_t points_open_ = 0;
  uint64_t tick_ = 0;
  uint64_t flushed_ = 0;
};

}  // namespace stix::storage

#endif  // STIX_STORAGE_BUCKET_CATALOG_H_
