#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace stix::storage {

namespace {

// Server-wide storage counters ("btree.splits", "btree.node_reads"): split
// pressure tracks write amplification, node reads per seek tracks how much
// of the tree queries walk (the B+tree half of the paper's keys-examined
// story).
void CountSplit() {
  STIX_METRIC_COUNTER(splits, "btree.splits");
  splits.Increment();
}

void CountNodeReads(uint64_t n) {
  STIX_METRIC_COUNTER(node_reads, "btree.node_reads");
  node_reads.Increment(n);
}

}  // namespace

// Fires whenever a leaf or internal node splits. Insert has no Status
// channel, so only the delay action is honored (error configs still count
// as fired for observability).
STIX_FAIL_POINT_DEFINE(btreeNodeSplit);

// Fires on every successful entry removal (the lazy-deletion path that
// stands in for a merge in this tree).
STIX_FAIL_POINT_DEFINE(btreeRemoveEntry);

namespace {

struct EntryRef {
  std::string_view key;
  RecordId rid;
};

bool EntryLess(std::string_view key_a, RecordId rid_a, std::string_view key_b,
               RecordId rid_b) {
  const int c = key_a.compare(key_b);
  if (c != 0) return c < 0;
  return rid_a < rid_b;
}

size_t CommonPrefixLen(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

struct BTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BTree::LeafNode : BTree::Node {
  struct Entry {
    std::string key;
    RecordId rid;
  };

  LeafNode() : Node(true) {}

  std::vector<Entry> entries;
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;
};

struct BTree::InternalNode : BTree::Node {
  InternalNode() : Node(false) {}

  // Separators carry (key, rid) so that runs of duplicate keys may span a
  // leaf split and still route correctly: child i covers entries in
  // [separators[i], separators[i+1]) under (key, rid) order, and
  // separators[0] is conceptually -inf (never compared).
  struct Separator {
    std::string key;
    RecordId rid;
  };
  std::vector<Separator> separators;
  std::vector<std::unique_ptr<Node>> children;

  // Index of the child whose range contains the entry (key, rid).
  size_t ChildIndexFor(std::string_view key, RecordId rid) const {
    size_t lo = 1, result = 0;
    size_t hi = separators.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const Separator& sep = separators[mid];
      if (EntryLess(sep.key, sep.rid, key, rid) ||
          (sep.key == key && sep.rid == rid)) {
        result = mid;
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return result;
  }
};

BTree::BTree() : root_(std::make_unique<LeafNode>()) {}
BTree::~BTree() = default;

std::unique_ptr<BTree::Node> BTree::InsertRec(Node* node, std::string_view key,
                                              RecordId rid,
                                              std::string* split_key,
                                              RecordId* split_rid) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    const auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), EntryRef{key, rid},
        [](const LeafNode::Entry& e, const EntryRef& probe) {
          return EntryLess(e.key, e.rid, probe.key, probe.rid);
        });
    leaf->entries.insert(it, LeafNode::Entry{std::string(key), rid});
    if (leaf->entries.size() <= kMaxLeafEntries) return nullptr;
    (void)btreeNodeSplit.Evaluate();
    CountSplit();

    // Split: move the upper half into a new right sibling.
    auto right = std::make_unique<LeafNode>();
    const size_t half = leaf->entries.size() / 2;
    right->entries.assign(std::make_move_iterator(leaf->entries.begin() + half),
                          std::make_move_iterator(leaf->entries.end()));
    leaf->entries.resize(half);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right.get();
    leaf->next = right.get();
    *split_key = right->entries.front().key;
    *split_rid = right->entries.front().rid;
    return right;
  }

  auto* internal = static_cast<InternalNode*>(node);
  const size_t child_idx = internal->ChildIndexFor(key, rid);
  std::string child_split_key;
  RecordId child_split_rid = 0;
  std::unique_ptr<Node> new_child =
      InsertRec(internal->children[child_idx].get(), key, rid,
                &child_split_key, &child_split_rid);
  if (new_child == nullptr) return nullptr;

  internal->separators.insert(
      internal->separators.begin() + child_idx + 1,
      InternalNode::Separator{std::move(child_split_key), child_split_rid});
  internal->children.insert(internal->children.begin() + child_idx + 1,
                            std::move(new_child));
  if (internal->children.size() <= kMaxInternalChildren) return nullptr;
  (void)btreeNodeSplit.Evaluate();
  CountSplit();

  // Split the internal node.
  auto right = std::make_unique<InternalNode>();
  const size_t half = internal->children.size() / 2;
  *split_key = internal->separators[half].key;
  *split_rid = internal->separators[half].rid;
  right->separators.assign(
      std::make_move_iterator(internal->separators.begin() + half),
      std::make_move_iterator(internal->separators.end()));
  right->children.assign(
      std::make_move_iterator(internal->children.begin() + half),
      std::make_move_iterator(internal->children.end()));
  internal->separators.resize(half);
  internal->children.resize(half);
  return right;
}

void BTree::Insert(std::string_view key, RecordId rid) {
  std::string split_key;
  RecordId split_rid = 0;
  std::unique_ptr<Node> new_sibling =
      InsertRec(root_.get(), key, rid, &split_key, &split_rid);
  ++num_entries_;
  if (new_sibling == nullptr) return;

  auto new_root = std::make_unique<InternalNode>();
  new_root->separators.push_back({});  // -inf placeholder
  new_root->separators.push_back(
      InternalNode::Separator{std::move(split_key), split_rid});
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(new_sibling));
  root_ = std::move(new_root);
  ++height_;
}

bool BTree::Remove(std::string_view key, RecordId rid) {
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    node = internal->children[internal->ChildIndexFor(key, rid)].get();
  }
  auto* leaf = static_cast<LeafNode*>(node);
  const auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), EntryRef{key, rid},
      [](const LeafNode::Entry& e, const EntryRef& probe) {
        return EntryLess(e.key, e.rid, probe.key, probe.rid);
      });
  if (it == leaf->entries.end() || it->key != key || it->rid != rid) {
    return false;
  }
  (void)btreeRemoveEntry.Evaluate();
  leaf->entries.erase(it);
  --num_entries_;
  // Lazy deletion: underfull/empty leaves stay; cursors skip them.
  return true;
}

const std::string& BTree::Cursor::key() const {
  return static_cast<const LeafNode*>(leaf_)->entries[pos_].key;
}

RecordId BTree::Cursor::rid() const {
  return static_cast<const LeafNode*>(leaf_)->entries[pos_].rid;
}

void BTree::Cursor::Next() {
  ++pos_;
  SkipEmptyLeaves();
}

void BTree::Cursor::SkipEmptyLeaves() {
  auto* leaf = static_cast<LeafNode*>(leaf_);
  while (leaf != nullptr && pos_ >= leaf->entries.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BTree::Cursor BTree::First() const {
  Node* node = root_.get();
  uint64_t nodes_read = 1;
  while (!node->is_leaf) {
    node = static_cast<InternalNode*>(node)->children.front().get();
    ++nodes_read;
  }
  CountNodeReads(nodes_read);
  Cursor c;
  c.leaf_ = node;
  c.pos_ = 0;
  c.SkipEmptyLeaves();
  return c;
}

BTree::Cursor BTree::SeekGE(std::string_view key) const {
  Node* node = root_.get();
  uint64_t nodes_read = 1;
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    node = internal->children[internal->ChildIndexFor(key, 0)].get();
    ++nodes_read;
  }
  CountNodeReads(nodes_read);
  auto* leaf = static_cast<LeafNode*>(node);
  const auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafNode::Entry& e, std::string_view probe) {
        return std::string_view(e.key) < probe;
      });
  Cursor c;
  c.leaf_ = leaf;
  c.pos_ = static_cast<size_t>(it - leaf->entries.begin());
  c.SkipEmptyLeaves();
  return c;
}

BTree::Cursor BTree::SeekGE(std::string_view key, RecordId rid) const {
  Cursor c = SeekGE(key);
  // Entries are ordered by (key, rid); SeekGE(key) lands on the first entry
  // with the key, so only same-key entries with smaller rids remain to skip.
  while (c.Valid() && c.key() == key && c.rid() < rid) c.Next();
  return c;
}

namespace {

// Fixed overheads for size accounting: per entry (RecordId + slot) and per
// page (headers), roughly WiredTiger's.
constexpr uint64_t kPerEntryOverhead = 12;
constexpr uint64_t kPerPageOverhead = 64;

}  // namespace

uint64_t BTree::SizeWithPrefixCompression() const {
  uint64_t total = 0;
  for (Cursor c = First(); c.Valid();) {
    // Walk one leaf at a time.
    const auto* leaf = static_cast<const LeafNode*>(c.leaf_);
    total += kPerPageOverhead;
    std::string_view prev;
    bool first = true;
    for (const auto& e : leaf->entries) {
      if (first) {
        total += e.key.size() + kPerEntryOverhead;
        first = false;
      } else {
        total += e.key.size() - CommonPrefixLen(prev, e.key) +
                 kPerEntryOverhead;
      }
      prev = e.key;
    }
    // Advance cursor past this leaf.
    const void* this_leaf = c.leaf_;
    while (c.Valid() && c.leaf_ == this_leaf) c.Next();
  }
  return total;
}

uint64_t BTree::SizeUncompressed() const {
  uint64_t total = 0;
  const void* current_leaf = nullptr;
  for (Cursor c = First(); c.Valid(); c.Next()) {
    if (c.leaf_ != current_leaf) {
      total += kPerPageOverhead;
      current_leaf = c.leaf_;
    }
    total += c.key().size() + kPerEntryOverhead;
  }
  return total;
}

bool BTree::CheckInvariants() const {
  uint64_t entries_seen = 0;
  // Check global ordering via leaf chain.
  std::string prev_key;
  RecordId prev_rid = 0;
  bool first = true;
  for (Cursor c = First(); c.Valid(); c.Next()) {
    // Strict order over (key, rid): duplicates of the same pair never occur.
    if (!first && !EntryLess(prev_key, prev_rid, c.key(), c.rid())) {
      return false;
    }
    prev_key = c.key();
    prev_rid = c.rid();
    first = false;
    ++entries_seen;
  }
  return entries_seen == num_entries_;
}

}  // namespace stix::storage
