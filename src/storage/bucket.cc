#include "storage/bucket.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>

#include "bson/codec.h"
#include "bson/simple8b.h"
#include "common/lz.h"

namespace stix::storage {
namespace {

constexpr int32_t kBucketFormatVersion = 1;
/// Hilbert range lists are capped: past this the closest-gap ranges merge,
/// trading pruning precision for metadata size (like an s2 covering cap).
constexpr size_t kMaxBucketHilRanges = 16;

/// Per-point extraction slots, in position-column order.
enum ExtractSlot { kSlotTs = 0, kSlotLoc, kSlotId, kSlotHil, kNumSlots };

/// Strict structural check that `v` is exactly the sub-document
/// GeoJsonPoint() builds — field order, names and value types included —
/// so re-synthesizing it from the (lon, lat) columns is byte-identical.
bool IsCanonicalGeoPoint(const bson::Value& v, double* lon, double* lat) {
  if (v.type() != bson::Type::kDocument) return false;
  const bson::Document& d = v.AsDocument();
  if (d.size() != 2) return false;
  const auto& type_field = d.field(0);
  if (type_field.first != "type" ||
      type_field.second.type() != bson::Type::kString ||
      type_field.second.AsString() != "Point") {
    return false;
  }
  const auto& coords_field = d.field(1);
  if (coords_field.first != "coordinates" ||
      coords_field.second.type() != bson::Type::kArray) {
    return false;
  }
  const bson::Array& coords = coords_field.second.AsArray();
  if (coords.size() != 2 || coords[0].type() != bson::Type::kDouble ||
      coords[1].type() != bson::Type::kDouble) {
    return false;
  }
  *lon = coords[0].AsDouble();
  *lat = coords[1].AsDouble();
  return true;
}

/// Merges sorted hilbert values into at most kMaxBucketHilRanges closed
/// ranges: exact consecutive runs first, then closest-gap merging.
std::vector<std::pair<int64_t, int64_t>> BuildHilRanges(
    std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<std::pair<int64_t, int64_t>> runs;
  for (const int64_t v : values) {
    if (!runs.empty() && v == runs.back().second + 1) {
      runs.back().second = v;
    } else {
      runs.emplace_back(v, v);
    }
  }
  while (runs.size() > kMaxBucketHilRanges) {
    size_t best = 0;
    int64_t best_gap = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i + 1 < runs.size(); ++i) {
      const int64_t gap = runs[i + 1].first - runs[i].second;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    runs[best].second = runs[best + 1].second;
    runs.erase(runs.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
  return runs;
}

/// Types the uniform-schema residual encoding can put in a column of its
/// own; documents, arrays and ObjectIds stay on the per-point BSON path.
bool IsColumnarType(bson::Type t) {
  switch (t) {
    case bson::Type::kNull:
    case bson::Type::kBool:
    case bson::Type::kInt32:
    case bson::Type::kInt64:
    case bson::Type::kDouble:
    case bson::Type::kString:
    case bson::Type::kDateTime:
      return true;
    default:
      return false;
  }
}

const bson::Value* GetSubField(const bson::Document& doc,
                               std::string_view outer,
                               std::string_view inner) {
  const bson::Value* sub = doc.Get(outer);
  if (sub == nullptr || sub->type() != bson::Type::kDocument) return nullptr;
  return sub->AsDocument().Get(inner);
}

/// Decoded "cols" residual: one column per schema field, materialized as a
/// whole so point reconstruction is column reads, not per-point parsing.
struct ResidualColumns {
  struct Field {
    std::string name;
    bson::Type type = bson::Type::kNull;
    std::vector<int64_t> ints;        ///< kBool/kInt32/kInt64/kDateTime.
    std::vector<double> doubles;      ///< kDouble.
    std::vector<size_t> str_offsets;  ///< n+1 prefix offsets into blob.
    std::string blob;                 ///< kString bytes, concatenated.

    bson::Value ValueAt(size_t i) const {
      switch (type) {
        case bson::Type::kBool:
          return bson::Value::Bool(ints[i] != 0);
        case bson::Type::kInt32:
          return bson::Value::Int32(static_cast<int32_t>(ints[i]));
        case bson::Type::kInt64:
          return bson::Value::Int64(ints[i]);
        case bson::Type::kDateTime:
          return bson::Value::DateTime(ints[i]);
        case bson::Type::kDouble:
          return bson::Value::Double(doubles[i]);
        case bson::Type::kString:
          return bson::Value::String(
              blob.substr(str_offsets[i], str_offsets[i + 1] - str_offsets[i]));
        default:
          return bson::Value::Null();
      }
    }
  };
  std::vector<Field> fields;
};

Result<ResidualColumns> DecodeResidualColumns(std::string_view in, size_t n) {
  ResidualColumns out;
  Result<uint64_t> nfields = bson::GetVarint(&in);
  if (!nfields.ok()) return nfields.status();
  if (*nfields > in.size()) {
    return Status::Corruption("bucket residual schema is truncated");
  }
  out.fields.resize(*nfields);
  for (ResidualColumns::Field& f : out.fields) {
    Result<uint64_t> name_len = bson::GetVarint(&in);
    if (!name_len.ok()) return name_len.status();
    if (*name_len >= in.size()) {
      return Status::Corruption("bucket residual schema is truncated");
    }
    f.name.assign(in.data(), *name_len);
    in.remove_prefix(*name_len);
    f.type = static_cast<bson::Type>(static_cast<uint8_t>(in.front()));
    in.remove_prefix(1);
    if (!IsColumnarType(f.type)) {
      return Status::Corruption("bucket residual schema has a bad type");
    }
  }
  for (ResidualColumns::Field& f : out.fields) {
    switch (f.type) {
      case bson::Type::kNull:
        break;
      case bson::Type::kBool:
      case bson::Type::kInt32:
      case bson::Type::kInt64:
      case bson::Type::kDateTime: {
        Result<std::vector<int64_t>> v = bson::DecodeInt64Column(&in);
        if (!v.ok()) return v.status();
        if (v->size() != n) {
          return Status::Corruption("bucket residual column is short");
        }
        f.ints = std::move(*v);
        break;
      }
      case bson::Type::kDouble: {
        Result<std::vector<double>> v = bson::DecodeDoubleColumn(&in);
        if (!v.ok()) return v.status();
        if (v->size() != n) {
          return Status::Corruption("bucket residual column is short");
        }
        f.doubles = std::move(*v);
        break;
      }
      case bson::Type::kString: {
        Result<std::vector<int64_t>> lens = bson::DecodeInt64Column(&in);
        if (!lens.ok()) return lens.status();
        if (lens->size() != n) {
          return Status::Corruption("bucket residual column is short");
        }
        Result<uint64_t> zlen = bson::GetVarint(&in);
        if (!zlen.ok()) return zlen.status();
        if (*zlen > in.size()) {
          return Status::Corruption("bucket residual blob is truncated");
        }
        Result<std::string> blob = LzDecompress(in.substr(0, *zlen));
        if (!blob.ok()) return blob.status();
        in.remove_prefix(*zlen);
        f.blob = std::move(*blob);
        f.str_offsets.resize(n + 1);
        size_t off = 0;
        for (size_t i = 0; i < n; ++i) {
          f.str_offsets[i] = off;
          if ((*lens)[i] < 0 ||
              static_cast<uint64_t>((*lens)[i]) > f.blob.size() - off) {
            return Status::Corruption("bucket residual blob is truncated");
          }
          off += static_cast<size_t>((*lens)[i]);
        }
        f.str_offsets[n] = off;
        if (off != f.blob.size()) {
          return Status::Corruption("bucket residual blob length mismatch");
        }
        break;
      }
      default:
        return Status::Corruption("bucket residual schema has a bad type");
    }
  }
  return out;
}

}  // namespace

bool IsBucketDocument(const bson::Document& doc) {
  const bson::Value* v = GetSubField(doc, kBucketDataField, "v");
  return v != nullptr && v->type() == bson::Type::kInt32 &&
         v->AsInt32() == kBucketFormatVersion &&
         doc.Get(kBucketMetaField) != nullptr;
}

Result<BucketKey> ComputeBucketKey(const bson::Document& point,
                                   const BucketLayout& layout) {
  const bson::Value* ts = point.Get(layout.time_field);
  if (ts == nullptr || ts->type() != bson::Type::kDateTime) {
    return Status::InvalidArgument(
        "bucketed store requires a DateTime '" + layout.time_field +
        "' field on every document");
  }
  BucketKey key;
  key.window = layout.WindowBase(ts->AsDateTime());
  if (const bson::Value* v = point.Get(layout.vehicle_field)) {
    if (v->type() == bson::Type::kInt32) key.vehicle = v->AsInt32();
    if (v->type() == bson::Type::kInt64) key.vehicle = v->AsInt64();
  }
  if (layout.use_hilbert) {
    if (const bson::Value* h = point.Get(layout.hilbert_field);
        h != nullptr && h->type() == bson::Type::kInt64) {
      key.cell = h->AsInt64() >> layout.hilbert_shift;
    }
  }
  return key;
}

Result<bson::Document> EncodeBucket(const std::vector<bson::Document>& points,
                                    const BucketLayout& layout) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot encode an empty bucket");
  }
  const size_t n = points.size();

  std::vector<int64_t> ts(n), hil(n);
  std::vector<double> lon(n), lat(n);
  std::string ids;
  ids.reserve(n * bson::ObjectId::kSize);
  // Field position of each extracted slot inside its point (-1 = the slot's
  // column was not extracted); interleaved kNumSlots per point.
  std::vector<int64_t> positions(n * kNumSlots, -1);
  bool has_loc = true, has_id = true, has_hil = true;

  for (size_t i = 0; i < n; ++i) {
    const bson::Document& p = points[i];
    bool got_ts = false, got_loc = false, got_id = false, got_hil = false;
    for (size_t fi = 0; fi < p.size(); ++fi) {
      const auto& [name, value] = p.field(fi);
      if (!got_ts && name == layout.time_field &&
          value.type() == bson::Type::kDateTime) {
        ts[i] = value.AsDateTime();
        positions[i * kNumSlots + kSlotTs] = static_cast<int64_t>(fi);
        got_ts = true;
      } else if (!got_loc && name == layout.location_field &&
                 IsCanonicalGeoPoint(value, &lon[i], &lat[i])) {
        positions[i * kNumSlots + kSlotLoc] = static_cast<int64_t>(fi);
        got_loc = true;
      } else if (!got_id && name == "_id" &&
                 value.type() == bson::Type::kObjectId) {
        const auto& bytes = value.AsObjectId().bytes();
        ids.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
        positions[i * kNumSlots + kSlotId] = static_cast<int64_t>(fi);
        got_id = true;
      } else if (!got_hil && name == layout.hilbert_field &&
                 value.type() == bson::Type::kInt64) {
        hil[i] = value.AsInt64();
        positions[i * kNumSlots + kSlotHil] = static_cast<int64_t>(fi);
        got_hil = true;
      }
    }
    if (!got_ts) {
      return Status::InvalidArgument(
          "bucketed point lacks a DateTime '" + layout.time_field + "' field");
    }
    has_loc = has_loc && got_loc;
    has_id = has_id && got_id;
    has_hil = has_hil && got_hil;
  }
  // A column is extracted only when every point qualifies; otherwise those
  // fields stay in the per-point residuals and the slot's positions reset
  // to -1 (mixed-presence columns would need a validity bitmap for nothing
  // the workload produces).
  for (size_t i = 0; i < n; ++i) {
    if (!has_loc) positions[i * kNumSlots + kSlotLoc] = -1;
    if (!has_id) positions[i * kNumSlots + kSlotId] = -1;
    if (!has_hil) positions[i * kNumSlots + kSlotHil] = -1;
  }

  const int64_t window_base = layout.WindowBase(ts[0]);
  int64_t min_ts = ts[0], max_ts = ts[0];
  for (size_t i = 0; i < n; ++i) {
    if (layout.WindowBase(ts[i]) != window_base) {
      return Status::InvalidArgument("bucket spans more than one time window");
    }
    min_ts = std::min(min_ts, ts[i]);
    max_ts = std::max(max_ts, ts[i]);
  }
  if (layout.use_hilbert && has_hil) {
    const int64_t cell = hil[0] >> layout.hilbert_shift;
    for (size_t i = 0; i < n; ++i) {
      if ((hil[i] >> layout.hilbert_shift) != cell) {
        return Status::InvalidArgument(
            "bucket spans more than one hilbert cell");
      }
    }
  }

  // The fields not lifted into the four special columns. Two encodings:
  // when every point carries the same scalar schema (names, types and order
  // all equal — the steady state of telemetry streams), each field becomes
  // its own column ("cols"), so field names and BSON framing are stored
  // once per bucket instead of once per point and numeric streams get the
  // delta transforms. Mixed-schema buckets fall back to per-point BSON
  // sub-documents LZ-compressed together ("res").
  std::vector<std::vector<const std::pair<std::string, bson::Value>*>>
      res_fields(n);
  for (size_t i = 0; i < n; ++i) {
    const bson::Document& p = points[i];
    for (size_t fi = 0; fi < p.size(); ++fi) {
      bool extracted = false;
      for (int slot = 0; slot < kNumSlots; ++slot) {
        if (positions[i * kNumSlots + slot] == static_cast<int64_t>(fi)) {
          extracted = true;
          break;
        }
      }
      if (!extracted) res_fields[i].push_back(&p.field(fi));
    }
  }

  bool uniform = true;
  for (const auto* field : res_fields[0]) {
    if (!IsColumnarType(field->second.type())) {
      uniform = false;
      break;
    }
  }
  for (size_t i = 1; uniform && i < n; ++i) {
    if (res_fields[i].size() != res_fields[0].size()) {
      uniform = false;
      break;
    }
    for (size_t f = 0; f < res_fields[i].size(); ++f) {
      if (res_fields[i][f]->first != res_fields[0][f]->first ||
          res_fields[i][f]->second.type() != res_fields[0][f]->second.type()) {
        uniform = false;
        break;
      }
    }
  }

  std::string residual_col;
  if (uniform) {
    const auto& schema = res_fields[0];
    bson::PutVarint(schema.size(), &residual_col);
    for (const auto* field : schema) {
      bson::PutVarint(field->first.size(), &residual_col);
      residual_col.append(field->first);
      residual_col.push_back(
          static_cast<char>(static_cast<uint8_t>(field->second.type())));
    }
    for (size_t f = 0; f < schema.size(); ++f) {
      switch (schema[f]->second.type()) {
        case bson::Type::kNull:
          break;  // The (name, type) pair is the whole encoding.
        case bson::Type::kBool:
        case bson::Type::kInt32:
        case bson::Type::kInt64:
        case bson::Type::kDateTime: {
          std::vector<int64_t> v(n);
          for (size_t i = 0; i < n; ++i) {
            const bson::Value& val = res_fields[i][f]->second;
            switch (val.type()) {
              case bson::Type::kBool:
                v[i] = val.AsBool() ? 1 : 0;
                break;
              case bson::Type::kInt32:
                v[i] = val.AsInt32();
                break;
              case bson::Type::kInt64:
                v[i] = val.AsInt64();
                break;
              default:
                v[i] = val.AsDateTime();
                break;
            }
          }
          bson::EncodeInt64Column(v, &residual_col);
          break;
        }
        case bson::Type::kDouble: {
          std::vector<double> v(n);
          for (size_t i = 0; i < n; ++i) {
            v[i] = res_fields[i][f]->second.AsDouble();
          }
          bson::EncodeDoubleColumn(v, &residual_col);
          break;
        }
        case bson::Type::kString: {
          std::vector<int64_t> lens(n);
          std::string blob;
          for (size_t i = 0; i < n; ++i) {
            const std::string& s = res_fields[i][f]->second.AsString();
            lens[i] = static_cast<int64_t>(s.size());
            blob.append(s);
          }
          bson::EncodeInt64Column(lens, &residual_col);
          const std::string z = LzCompress(blob);
          bson::PutVarint(z.size(), &residual_col);
          residual_col.append(z);
          break;
        }
        default:
          return Status::Internal("non-columnar type in uniform schema");
      }
    }
  } else {
    std::string residuals;
    for (size_t i = 0; i < n; ++i) {
      bson::Document res;
      for (const auto* field : res_fields[i]) {
        res.Append(field->first, field->second);
      }
      const std::string bytes = bson::EncodeBson(res);
      bson::PutVarint(bytes.size(), &residuals);
      residuals.append(bytes);
    }
    residual_col = LzCompress(residuals);
  }

  std::string ts_col, lon_col, lat_col, hil_col, pos_col;
  bson::EncodeInt64Column(ts, &ts_col);
  if (has_loc) {
    bson::EncodeDoubleColumn(lon, &lon_col);
    bson::EncodeDoubleColumn(lat, &lat_col);
  }
  if (has_hil) bson::EncodeInt64Column(hil, &hil_col);
  bson::EncodeInt64Column(positions, &pos_col);

  bson::Document meta;
  meta.Append("minTs", bson::Value::DateTime(min_ts));
  meta.Append("maxTs", bson::Value::DateTime(max_ts));
  meta.Append("n", bson::Value::Int32(static_cast<int32_t>(n)));
  if (has_loc) {
    const auto [lon_lo, lon_hi] = std::minmax_element(lon.begin(), lon.end());
    const auto [lat_lo, lat_hi] = std::minmax_element(lat.begin(), lat.end());
    bson::Array mbr;
    mbr.push_back(bson::Value::Double(*lon_lo));
    mbr.push_back(bson::Value::Double(*lat_lo));
    mbr.push_back(bson::Value::Double(*lon_hi));
    mbr.push_back(bson::Value::Double(*lat_hi));
    meta.Append("mbr", bson::Value::MakeArray(std::move(mbr)));
  }
  if (has_hil) {
    bson::Array ranges;
    for (const auto& [r_lo, r_hi] : BuildHilRanges(hil)) {
      ranges.push_back(bson::Value::Int64(r_lo));
      ranges.push_back(bson::Value::Int64(r_hi));
    }
    meta.Append("hil", bson::Value::MakeArray(std::move(ranges)));
  }

  bson::Document data;
  data.Append("v", bson::Value::Int32(kBucketFormatVersion));
  data.Append("ts", bson::Value::String(std::move(ts_col)));
  if (has_loc) {
    data.Append("lon", bson::Value::String(std::move(lon_col)));
    data.Append("lat", bson::Value::String(std::move(lat_col)));
  }
  if (has_hil) data.Append("hil", bson::Value::String(std::move(hil_col)));
  if (has_id) {
    // ObjectIds inside one bucket share their timestamp/machine prefix;
    // LZ'ing the concatenation keeps roughly the per-point counter bytes.
    data.Append("ids", bson::Value::String(LzCompress(ids)));
  }
  data.Append("pos", bson::Value::String(std::move(pos_col)));
  data.Append(uniform ? "cols" : "res",
              bson::Value::String(std::move(residual_col)));

  bson::Document bucket;
  if (has_id) {
    // The first point's _id doubles as the bucket's _id (unique: a point is
    // in exactly one bucket).
    bucket.Append("_id", *points[0].Get("_id"));
  }
  bucket.Append(layout.time_field, bson::Value::DateTime(window_base));
  if (layout.use_hilbert && has_hil) {
    bucket.Append(layout.hilbert_field,
                  bson::Value::Int64((hil[0] >> layout.hilbert_shift)
                                     << layout.hilbert_shift));
  }
  bucket.Append(kBucketMetaField, bson::Value::MakeDocument(std::move(meta)));
  bucket.Append(kBucketDataField, bson::Value::MakeDocument(std::move(data)));
  return bucket;
}

Result<BucketMeta> ParseBucketMeta(const bson::Document& bucket) {
  const bson::Value* meta_v = bucket.Get(kBucketMetaField);
  if (meta_v == nullptr || meta_v->type() != bson::Type::kDocument) {
    return Status::Corruption("bucket document lacks meta");
  }
  const bson::Document& meta = meta_v->AsDocument();
  BucketMeta out;
  const bson::Value* min_ts = meta.Get("minTs");
  const bson::Value* max_ts = meta.Get("maxTs");
  const bson::Value* n = meta.Get("n");
  if (min_ts == nullptr || min_ts->type() != bson::Type::kDateTime ||
      max_ts == nullptr || max_ts->type() != bson::Type::kDateTime ||
      n == nullptr || n->type() != bson::Type::kInt32) {
    return Status::Corruption("bucket meta is malformed");
  }
  out.min_ts = min_ts->AsDateTime();
  out.max_ts = max_ts->AsDateTime();
  out.num_points = static_cast<uint32_t>(n->AsInt32());
  if (const bson::Value* mbr = meta.Get("mbr");
      mbr != nullptr && mbr->type() == bson::Type::kArray) {
    const bson::Array& a = mbr->AsArray();
    if (a.size() != 4) return Status::Corruption("bucket mbr is malformed");
    for (const bson::Value& v : a) {
      if (v.type() != bson::Type::kDouble) {
        return Status::Corruption("bucket mbr is malformed");
      }
    }
    out.has_mbr = true;
    out.mbr = {{a[0].AsDouble(), a[1].AsDouble()},
               {a[2].AsDouble(), a[3].AsDouble()}};
  }
  if (const bson::Value* hil = meta.Get("hil");
      hil != nullptr && hil->type() == bson::Type::kArray) {
    const bson::Array& a = hil->AsArray();
    if (a.size() % 2 != 0) {
      return Status::Corruption("bucket hil ranges are malformed");
    }
    out.hil_ranges.reserve(a.size() / 2);
    for (size_t i = 0; i < a.size(); i += 2) {
      if (a[i].type() != bson::Type::kInt64 ||
          a[i + 1].type() != bson::Type::kInt64) {
        return Status::Corruption("bucket hil ranges are malformed");
      }
      out.hil_ranges.emplace_back(a[i].AsInt64(), a[i + 1].AsInt64());
    }
  }
  return out;
}

Result<BucketTimeLoc> DecodeBucketTimeLoc(const bson::Document& bucket) {
  if (!IsBucketDocument(bucket)) {
    return Status::Corruption("not a bucket document");
  }
  Result<BucketMeta> meta = ParseBucketMeta(bucket);
  if (!meta.ok()) return meta.status();
  const size_t n = meta->num_points;
  const bson::Document& data = bucket.Get(kBucketDataField)->AsDocument();

  const auto column = [&data](std::string_view name) -> const std::string* {
    const bson::Value* v = data.Get(name);
    if (v == nullptr || v->type() != bson::Type::kString) return nullptr;
    return &v->AsString();
  };

  const std::string* ts_col = column("ts");
  if (ts_col == nullptr) {
    return Status::Corruption("bucket data columns are missing");
  }
  BucketTimeLoc out;
  std::string_view view = *ts_col;
  Result<std::vector<int64_t>> ts = bson::DecodeInt64Column(&view);
  if (!ts.ok()) return ts.status();
  if (ts->size() != n) {
    return Status::Corruption("bucket column lengths disagree with meta.n");
  }
  out.ts = std::move(*ts);

  if (const std::string* lon_col = column("lon")) {
    const std::string* lat_col = column("lat");
    if (lat_col == nullptr) {
      return Status::Corruption("bucket lon column without lat");
    }
    view = *lon_col;
    Result<std::vector<double>> lons = bson::DecodeDoubleColumn(&view);
    if (!lons.ok()) return lons.status();
    view = *lat_col;
    Result<std::vector<double>> lats = bson::DecodeDoubleColumn(&view);
    if (!lats.ok()) return lats.status();
    if (lons->size() != n || lats->size() != n) {
      return Status::Corruption("bucket location columns are short");
    }
    out.lon = std::move(*lons);
    out.lat = std::move(*lats);
  }
  return out;
}

Result<std::vector<bson::Document>> DecodeBucket(const bson::Document& bucket,
                                                 const BucketLayout& layout) {
  if (!IsBucketDocument(bucket)) {
    return Status::Corruption("not a bucket document");
  }
  Result<BucketMeta> meta = ParseBucketMeta(bucket);
  if (!meta.ok()) return meta.status();
  const size_t n = meta->num_points;
  const bson::Document& data = bucket.Get(kBucketDataField)->AsDocument();

  const auto column = [&data](std::string_view name) -> const std::string* {
    const bson::Value* v = data.Get(name);
    if (v == nullptr || v->type() != bson::Type::kString) return nullptr;
    return &v->AsString();
  };

  const std::string* ts_col = column("ts");
  const std::string* pos_col = column("pos");
  const std::string* res_col = column("res");
  const std::string* cols_col = column("cols");
  if (ts_col == nullptr || pos_col == nullptr ||
      (res_col == nullptr) == (cols_col == nullptr)) {
    return Status::Corruption("bucket data columns are missing");
  }

  std::string_view view = *ts_col;
  Result<std::vector<int64_t>> ts = bson::DecodeInt64Column(&view);
  if (!ts.ok()) return ts.status();
  view = *pos_col;
  Result<std::vector<int64_t>> positions = bson::DecodeInt64Column(&view);
  if (!positions.ok()) return positions.status();
  if (ts->size() != n || positions->size() != n * kNumSlots) {
    return Status::Corruption("bucket column lengths disagree with meta.n");
  }

  std::vector<double> lon, lat;
  if (const std::string* lon_col = column("lon")) {
    const std::string* lat_col = column("lat");
    if (lat_col == nullptr) {
      return Status::Corruption("bucket lon column without lat");
    }
    view = *lon_col;
    Result<std::vector<double>> lons = bson::DecodeDoubleColumn(&view);
    if (!lons.ok()) return lons.status();
    view = *lat_col;
    Result<std::vector<double>> lats = bson::DecodeDoubleColumn(&view);
    if (!lats.ok()) return lats.status();
    if (lons->size() != n || lats->size() != n) {
      return Status::Corruption("bucket location columns are short");
    }
    lon = std::move(*lons);
    lat = std::move(*lats);
  }

  std::vector<int64_t> hil;
  if (const std::string* hil_col = column("hil")) {
    view = *hil_col;
    Result<std::vector<int64_t>> hils = bson::DecodeInt64Column(&view);
    if (!hils.ok()) return hils.status();
    if (hils->size() != n) {
      return Status::Corruption("bucket hilbert column is short");
    }
    hil = std::move(*hils);
  }

  std::string ids;
  bool has_ids = false;
  if (const std::string* ids_col = column("ids")) {
    Result<std::string> raw = LzDecompress(*ids_col);
    if (!raw.ok()) return raw.status();
    if (raw->size() != n * bson::ObjectId::kSize) {
      return Status::Corruption("bucket ids column is short");
    }
    ids = std::move(*raw);
    has_ids = true;
  }

  std::string residuals;
  std::string_view res_view;
  ResidualColumns rescols;
  if (res_col != nullptr) {
    Result<std::string> raw = LzDecompress(*res_col);
    if (!raw.ok()) return raw.status();
    residuals = std::move(*raw);
    res_view = residuals;
  } else {
    Result<ResidualColumns> rc = DecodeResidualColumns(*cols_col, n);
    if (!rc.ok()) return rc.status();
    rescols = std::move(*rc);
  }

  std::vector<bson::Document> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bson::Document res;
    size_t res_count = rescols.fields.size();
    if (res_col != nullptr) {
      Result<uint64_t> res_len = bson::GetVarint(&res_view);
      if (!res_len.ok()) return res_len.status();
      if (res_view.size() < *res_len) {
        return Status::Corruption("bucket residuals are truncated");
      }
      Result<bson::Document> parsed =
          bson::DecodeBson(res_view.substr(0, *res_len));
      if (!parsed.ok()) return parsed.status();
      res_view.remove_prefix(*res_len);
      res = std::move(*parsed);
      res_count = res.size();
    }

    const int64_t* pos = &(*positions)[i * kNumSlots];
    const size_t total_fields =
        res_count + static_cast<size_t>(pos[kSlotTs] >= 0) +
        static_cast<size_t>(pos[kSlotLoc] >= 0) +
        static_cast<size_t>(pos[kSlotId] >= 0) +
        static_cast<size_t>(pos[kSlotHil] >= 0);
    bson::Document point;
    point.Reserve(total_fields);
    size_t res_next = 0;
    for (size_t fi = 0; fi < total_fields; ++fi) {
      if (pos[kSlotTs] == static_cast<int64_t>(fi)) {
        point.Append(layout.time_field, bson::Value::DateTime((*ts)[i]));
      } else if (pos[kSlotLoc] == static_cast<int64_t>(fi)) {
        if (lon.size() != n) {
          return Status::Corruption("bucket location columns are missing");
        }
        point.Append(layout.location_field,
                     bson::Value::MakeDocument(
                         bson::GeoJsonPoint(lon[i], lat[i])));
      } else if (pos[kSlotId] == static_cast<int64_t>(fi)) {
        if (!has_ids) {
          return Status::Corruption("bucket ids column is missing");
        }
        std::array<uint8_t, bson::ObjectId::kSize> bytes;
        std::memcpy(bytes.data(), ids.data() + i * bson::ObjectId::kSize,
                    bytes.size());
        point.Append("_id", bson::Value::Id(bson::ObjectId(bytes)));
      } else if (pos[kSlotHil] == static_cast<int64_t>(fi)) {
        if (hil.size() != n) {
          return Status::Corruption("bucket hilbert column is missing");
        }
        point.Append(layout.hilbert_field, bson::Value::Int64(hil[i]));
      } else {
        if (res_next >= res_count) {
          return Status::Corruption("bucket residual fields are short");
        }
        if (res_col != nullptr) {
          point.Append(res.field(res_next).first, res.field(res_next).second);
        } else {
          const ResidualColumns::Field& f = rescols.fields[res_next];
          point.Append(f.name, f.ValueAt(i));
        }
        ++res_next;
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace stix::storage
