#ifndef STIX_WORKLOAD_TRAJECTORY_GENERATOR_H_
#define STIX_WORKLOAD_TRAJECTORY_GENERATOR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "bson/document.h"
#include "common/rng.h"
#include "geo/geo.h"

namespace stix::workload {

/// Stand-in for the paper's proprietary fleet-management data set (R):
/// GPS traces of vehicles moving inside Greece's MBR between hotspot cities,
/// sampled in global time order (the order a CSV bulk load would insert).
/// The properties the experiments depend on are reproduced: heavy spatial
/// skew around urban hotspots with inter-city corridors, per-record extra
/// telemetry fields (the paper's 75 CSV columns), and a five-month span.
struct TrajectoryOptions {
  uint64_t seed = 7;
  uint64_t num_records = 250000;
  int num_vehicles = 400;
  /// Paper R MBR: [(19.632533, 34.929233), (28.245285, 41.757797)].
  geo::Rect mbr = {{19.632533, 34.929233}, {28.245285, 41.757797}};
  int64_t t_begin_ms = 1530403200000;  ///< 2018-07-01T00:00:00Z
  int64_t t_end_ms = 1543622400000;    ///< 2018-12-01T00:00:00Z
  /// Opaque blob standing in for the remaining CSV columns (weather, road
  /// network, POIs, ...) so document sizes resemble the real set at bench
  /// scale.
  size_t payload_bytes = 256;
};

class TrajectoryGenerator {
 public:
  explicit TrajectoryGenerator(const TrajectoryOptions& options);

  /// Produces the next record in global time order; false when exhausted.
  bool Next(bson::Document* doc);

  const TrajectoryOptions& options() const { return options_; }
  uint64_t emitted() const { return emitted_; }

  /// MBR of the paper's real data set.
  static geo::Rect GreeceMbr() {
    return {{19.632533, 34.929233}, {28.245285, 41.757797}};
  }

 private:
  struct Vehicle {
    int id;
    geo::Point pos;
    geo::Point dest;
    double speed_deg_per_s;  // great-circle speed expressed in degrees
    int64_t next_emit_ms;
    double fuel;
    double odometer_km;
  };
  struct EmitOrder {
    bool operator()(const Vehicle* a, const Vehicle* b) const {
      return a->next_emit_ms > b->next_emit_ms;
    }
  };

  geo::Point PickDestination();
  void Advance(Vehicle* v, double dt_seconds);

  TrajectoryOptions options_;
  Rng rng_;
  std::vector<Vehicle> vehicles_;
  std::priority_queue<Vehicle*, std::vector<Vehicle*>, EmitOrder> schedule_;
  double sample_interval_s_;
  uint64_t emitted_ = 0;
  std::string payload_template_;
};

}  // namespace stix::workload

#endif  // STIX_WORKLOAD_TRAJECTORY_GENERATOR_H_
