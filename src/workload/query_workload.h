#ifndef STIX_WORKLOAD_QUERY_WORKLOAD_H_
#define STIX_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.h"

namespace stix::workload {

/// One spatio-temporal range query of the benchmark.
struct StQuerySpec {
  std::string name;  ///< "Q1^s" .. "Q4^b"
  geo::Rect rect;
  int64_t t_begin_ms = 0;
  int64_t t_end_ms = 0;

  double duration_hours() const {
    return static_cast<double>(t_end_ms - t_begin_ms) / 3600000.0;
  }
};

/// The paper's small-query rectangle (526 km^2, central Athens):
/// [(23.757495, 37.987295), (23.766958, 37.992997)].
geo::Rect SmallQueryRect();

/// The paper's big-query rectangle (~2603x larger):
/// [(23.606039, 38.023982), (24.032754, 38.353926)].
geo::Rect BigQueryRect();

/// Builds Q1..Q4 of one category over a data set's time span: temporal
/// constraints of 1 hour, 1 day, 1 week and 1 month, placed on disjoint
/// sub-spans (the paper's queries do not overlap temporally).
std::vector<StQuerySpec> MakeQuerySet(bool big, int64_t span_begin_ms,
                                      int64_t span_end_ms);

}  // namespace stix::workload

#endif  // STIX_WORKLOAD_QUERY_WORKLOAD_H_
