#ifndef STIX_WORKLOAD_CSV_LOADER_H_
#define STIX_WORKLOAD_CSV_LOADER_H_

#include <string>
#include <string_view>

#include "bson/document.h"
#include "common/status.h"
#include "st/st_store.h"

namespace stix::workload {

/// Column layout of a positional CSV file, as the paper's loaders consume
/// (its S set is "two CSV files where each one contains 4 columns: id,
/// longitude, latitude and date").
struct CsvSchema {
  int id_column = 0;
  int longitude_column = 1;
  int latitude_column = 2;
  int date_column = 3;
  char separator = ',';
  bool has_header = false;
};

/// Converts one CSV record into the canonical document shape
/// {id, location: GeoJSON point, date: ISODate}. The date column accepts
/// ISO-8601 ("2018-10-01T08:34:40[.067][Z]") or epoch milliseconds.
/// Fails with InvalidArgument on missing columns or unparsable values.
Result<bson::Document> ParseCsvRecord(std::string_view line,
                                      const CsvSchema& schema);

/// Streams a CSV file into the store record by record (the paper's bulk
/// loading path, Appendix A.1). Returns the number of documents inserted.
Result<uint64_t> LoadCsvFile(const std::string& path, const CsvSchema& schema,
                             st::StStore* store);

}  // namespace stix::workload

#endif  // STIX_WORKLOAD_CSV_LOADER_H_
