#include "workload/trajectory_generator.h"

#include <algorithm>
#include <cmath>

namespace stix::workload {
namespace {

/// Urban hotspots with selection weights and spread — the spatial skew of
/// the fleet data (Athens dominates, as the paper's query rectangles
/// suggest). The dense "Athens core" models the downtown area the paper's
/// small query rectangle targets: fleet activity concentrates on a few
/// city-centre blocks.
struct City {
  double lon;
  double lat;
  double weight;
  double sigma;  ///< Gaussian spread of destinations, degrees.
};

constexpr City kCities[] = {
    {23.7620, 37.9900, 0.12, 0.006},  // Athens core (downtown blocks)
    {23.7275, 37.9838, 0.24, 0.050},  // Athens metro area
    {22.9444, 40.6401, 0.17, 0.040},  // Thessaloniki
    {21.7346, 38.2466, 0.10, 0.035},  // Patras
    {25.1442, 35.3387, 0.08, 0.030},  // Heraklion
    {22.4194, 39.6390, 0.07, 0.030},  // Larissa
    {22.9444, 39.3622, 0.06, 0.025},  // Volos
    {20.8537, 39.6650, 0.05, 0.025},  // Ioannina
    {24.4019, 40.9396, 0.05, 0.025},  // Kavala
};
constexpr double kCityWeightTotal = 0.94;  // remainder: uniform background

constexpr const char* kRoadTypes[] = {"motorway", "primary", "secondary",
                                      "residential", "service"};

}  // namespace

TrajectoryGenerator::TrajectoryGenerator(const TrajectoryOptions& options)
    : options_(options), rng_(options.seed) {
  // Sampling cadence so all vehicles together emit num_records over the span.
  const double span_s =
      static_cast<double>(options_.t_end_ms - options_.t_begin_ms) / 1000.0;
  sample_interval_s_ = span_s * static_cast<double>(options_.num_vehicles) /
                       static_cast<double>(options_.num_records);

  // A mildly repetitive payload: compresses, but not perfectly, like real
  // telemetry CSV columns.
  payload_template_.reserve(options_.payload_bytes);
  while (payload_template_.size() < options_.payload_bytes) {
    payload_template_ += "sensor=ok;rpm=";
    payload_template_ += std::to_string(800 + rng_.NextInt(0, 2400));
    payload_template_ += ";din=1;";
  }
  payload_template_.resize(options_.payload_bytes);

  vehicles_.reserve(options_.num_vehicles);
  for (int i = 0; i < options_.num_vehicles; ++i) {
    Vehicle v;
    v.id = i;
    v.pos = PickDestination();
    v.dest = PickDestination();
    // 8..28 m/s in degrees (~1e-5 deg/m).
    v.speed_deg_per_s = rng_.NextDouble(8.0, 28.0) / 111000.0;
    // Staggered start so the first samples are spread over one interval.
    v.next_emit_ms =
        options_.t_begin_ms +
        static_cast<int64_t>(rng_.NextDouble() * sample_interval_s_ * 1000.0);
    v.fuel = rng_.NextDouble(20.0, 100.0);
    v.odometer_km = rng_.NextDouble(0.0, 250000.0);
    vehicles_.push_back(v);
  }
  for (Vehicle& v : vehicles_) schedule_.push(&v);
}

geo::Point TrajectoryGenerator::PickDestination() {
  const double r = rng_.NextDouble();
  if (r < kCityWeightTotal) {
    double acc = 0.0;
    for (const City& c : kCities) {
      acc += c.weight;
      if (r < acc) {
        geo::Point p{c.lon + rng_.NextGaussian() * c.sigma,
                     c.lat + rng_.NextGaussian() * c.sigma * 0.8};
        p.lon = std::clamp(p.lon, options_.mbr.lo.lon, options_.mbr.hi.lon);
        p.lat = std::clamp(p.lat, options_.mbr.lo.lat, options_.mbr.hi.lat);
        return p;
      }
    }
  }
  return geo::Point{rng_.NextDouble(options_.mbr.lo.lon, options_.mbr.hi.lon),
                    rng_.NextDouble(options_.mbr.lo.lat, options_.mbr.hi.lat)};
}

void TrajectoryGenerator::Advance(Vehicle* v, double dt_seconds) {
  const double dx = v->dest.lon - v->pos.lon;
  const double dy = v->dest.lat - v->pos.lat;
  const double dist = std::sqrt(dx * dx + dy * dy);
  const double step = v->speed_deg_per_s * dt_seconds;
  if (dist <= step || dist < 1e-9) {
    v->pos = v->dest;
    v->dest = PickDestination();
    v->speed_deg_per_s = rng_.NextDouble(8.0, 28.0) / 111000.0;
  } else {
    v->pos.lon += dx / dist * step + rng_.NextGaussian() * 5e-4;
    v->pos.lat += dy / dist * step + rng_.NextGaussian() * 5e-4;
    v->pos.lon = std::clamp(v->pos.lon, options_.mbr.lo.lon,
                            options_.mbr.hi.lon);
    v->pos.lat = std::clamp(v->pos.lat, options_.mbr.lo.lat,
                            options_.mbr.hi.lat);
  }
  v->odometer_km += v->speed_deg_per_s * 111.0 * dt_seconds;
  v->fuel -= dt_seconds * 0.002;
  if (v->fuel < 5.0) v->fuel = 100.0;  // refuel
}

bool TrajectoryGenerator::Next(bson::Document* doc) {
  if (emitted_ >= options_.num_records || schedule_.empty()) return false;
  Vehicle* v = schedule_.top();
  schedule_.pop();
  const int64_t now_ms = v->next_emit_ms;

  *doc = bson::Document();
  doc->Append("vehicleId", bson::Value::Int32(v->id));
  doc->Append(
      "location",
      bson::Value::MakeDocument(bson::GeoJsonPoint(v->pos.lon, v->pos.lat)));
  doc->Append("date", bson::Value::DateTime(now_ms));
  doc->Append("speed",
              bson::Value::Double(v->speed_deg_per_s * 111000.0 * 3.6));
  doc->Append("heading", bson::Value::Double(rng_.NextDouble(0.0, 360.0)));
  doc->Append("fuelLevel", bson::Value::Double(v->fuel));
  doc->Append("odometer", bson::Value::Double(v->odometer_km));
  doc->Append("roadType", bson::Value::String(
                              kRoadTypes[rng_.NextBounded(5)]));
  doc->Append("temperatureC", bson::Value::Double(rng_.NextDouble(8.0, 38.0)));
  doc->Append("poiDistanceM", bson::Value::Double(rng_.NextDouble(0, 2500)));
  doc->Append("payload", bson::Value::String(payload_template_));

  // Schedule the vehicle's next sample with +-20% jitter and advance it.
  const double dt = sample_interval_s_ * rng_.NextDouble(0.8, 1.2);
  Advance(v, dt);
  v->next_emit_ms = now_ms + static_cast<int64_t>(dt * 1000.0);
  if (v->next_emit_ms < options_.t_end_ms) schedule_.push(v);

  ++emitted_;
  return true;
}

}  // namespace stix::workload
