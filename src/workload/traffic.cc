#include "workload/traffic.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>
#include <utility>

#include "common/percentile.h"
#include "geo/region.h"
#include "st/knn.h"
#include "st/st_store.h"

namespace stix::workload {
namespace {

using Clock = std::chrono::steady_clock;

const char* const kOpClassNames[kNumTrafficOpClasses] = {
    "rect", "polygon", "knn", "insert", "update"};

bson::Document MakeTrafficDoc(double lon, double lat, int64_t t_ms,
                              int32_t fid) {
  bson::Document doc;
  doc.Append(st::kLocationField,
             bson::Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append(st::kDateField, bson::Value::DateTime(t_ms));
  doc.Append("fid", bson::Value::Int32(fid));
  return doc;
}

// Hexagon inscribed in a rect (the polygon queries' fixed shape: convex,
// strictly inside the rect, so its covering reuses the rect machinery).
geo::Polygon InscribedHexagon(const geo::Rect& rect) {
  const double cx = (rect.lo.lon + rect.hi.lon) / 2.0;
  const double cy = (rect.lo.lat + rect.hi.lat) / 2.0;
  const double rx = (rect.hi.lon - rect.lo.lon) / 2.0;
  const double ry = (rect.hi.lat - rect.lo.lat) / 2.0;
  std::vector<geo::Point> vertices;
  vertices.reserve(6);
  for (int i = 0; i < 6; ++i) {
    const double theta = static_cast<double>(i) * M_PI / 3.0;
    vertices.push_back({cx + rx * std::cos(theta), cy + ry * std::sin(theta)});
  }
  return geo::Polygon(std::move(vertices));
}

void AppendBytes(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

void SerializeOp(std::string* out, const TrafficOp& op) {
  const uint8_t op_class = static_cast<uint8_t>(op.op_class);
  AppendBytes(out, &op_class, sizeof(op_class));
  AppendBytes(out, &op.session, sizeof(op.session));
  AppendBytes(out, &op.arrival_ms, sizeof(op.arrival_ms));
  AppendBytes(out, &op.lon, sizeof(op.lon));
  AppendBytes(out, &op.lat, sizeof(op.lat));
  AppendBytes(out, &op.doc_t_ms, sizeof(op.doc_t_ms));
  AppendBytes(out, &op.fid, sizeof(op.fid));
  AppendBytes(out, &op.del_lon, sizeof(op.del_lon));
  AppendBytes(out, &op.del_lat, sizeof(op.del_lat));
  AppendBytes(out, &op.del_t_ms, sizeof(op.del_t_ms));
  AppendBytes(out, &op.del_fid, sizeof(op.del_fid));
  AppendBytes(out, &op.rect.lo.lon, sizeof(double));
  AppendBytes(out, &op.rect.lo.lat, sizeof(double));
  AppendBytes(out, &op.rect.hi.lon, sizeof(double));
  AppendBytes(out, &op.rect.hi.lat, sizeof(double));
  AppendBytes(out, &op.t_begin_ms, sizeof(op.t_begin_ms));
  AppendBytes(out, &op.t_end_ms, sizeof(op.t_end_ms));
  AppendBytes(out, &op.k, sizeof(op.k));
}

// Generation-time record of one live report (what an update can target).
struct LiveReport {
  int32_t fid;
  double lon;
  double lat;
  int64_t t_ms;
};

}  // namespace

const char* TrafficOpClassName(TrafficOpClass op_class) {
  return kOpClassNames[static_cast<int>(op_class)];
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.reserve(n == 0 ? 1 : n);
  double total = 0.0;
  for (size_t k = 0; k < std::max<size_t>(n, 1); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

std::string TrafficPlan::SerializeOps() const {
  std::string out;
  out.reserve((preload.size() + ops.size()) * 101);
  for (const TrafficOp& op : preload) SerializeOp(&out, op);
  for (const TrafficOp& op : ops) SerializeOp(&out, op);
  return out;
}

std::string TrafficPlan::Fingerprint() const {
  const std::string bytes = SerializeOps();
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

TrafficPlan GenerateTrafficPlan(const TrafficConfig& config) {
  TrafficPlan plan;
  plan.config = config;
  Rng rng(config.seed);

  const int num_sessions = std::max(1, config.num_sessions);
  // Session micro-cells: a grid over the region, each cell shrunk by a 20%
  // margin per side so no two sessions' documents can share a cell boundary
  // — the parity oracle depends on the cells being disjoint.
  const int grid = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(num_sessions))));
  const double cell_w =
      (config.region.hi.lon - config.region.lo.lon) / grid;
  const double cell_h =
      (config.region.hi.lat - config.region.lo.lat) / grid;
  plan.sessions.resize(static_cast<size_t>(num_sessions));
  std::vector<std::vector<LiveReport>> live(
      static_cast<size_t>(num_sessions));
  for (int s = 0; s < num_sessions; ++s) {
    const int gx = s % grid;
    const int gy = s / grid;
    const double x0 = config.region.lo.lon + gx * cell_w;
    const double y0 = config.region.lo.lat + gy * cell_h;
    plan.sessions[static_cast<size_t>(s)].cell =
        geo::Rect{{x0 + 0.2 * cell_w, y0 + 0.2 * cell_h},
                  {x0 + 0.8 * cell_w, y0 + 0.8 * cell_h}};
  }

  // Zipf-ranked query hotspots: fixed sub-rects of the region.
  const int num_hotspots = std::max(1, config.num_hotspots);
  std::vector<geo::Rect> hotspots;
  hotspots.reserve(static_cast<size_t>(num_hotspots));
  const double region_w = config.region.hi.lon - config.region.lo.lon;
  const double region_h = config.region.hi.lat - config.region.lo.lat;
  for (int i = 0; i < num_hotspots; ++i) {
    const double w = region_w * rng.NextDouble(0.01, 0.08);
    const double h = region_h * rng.NextDouble(0.01, 0.08);
    const double x = rng.NextDouble(config.region.lo.lon,
                                    config.region.hi.lon - w);
    const double y = rng.NextDouble(config.region.lo.lat,
                                    config.region.hi.lat - h);
    hotspots.push_back(geo::Rect{{x, y}, {x + w, y + h}});
  }

  int32_t next_fid = 0;
  const auto emit_insert = [&](TrafficOp* op, int session) {
    const geo::Rect& cell = plan.sessions[static_cast<size_t>(session)].cell;
    op->session = session;
    op->lon = rng.NextDouble(cell.lo.lon, cell.hi.lon);
    op->lat = rng.NextDouble(cell.lo.lat, cell.hi.lat);
    op->doc_t_ms =
        config.t0_ms +
        static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(config.span_ms) + 1));
    op->fid = next_fid++;
    live[static_cast<size_t>(session)].push_back(
        LiveReport{op->fid, op->lon, op->lat, op->doc_t_ms});
  };

  // Preload: a few reports per session so the first queries see data and
  // the first updates have something to correct.
  for (int s = 0; s < num_sessions; ++s) {
    for (int i = 0; i < config.preload_per_session; ++i) {
      TrafficOp op;
      op.op_class = TrafficOpClass::kInsert;
      emit_insert(&op, s);
      plan.preload.push_back(op);
    }
  }

  const ZipfSampler session_zipf(static_cast<size_t>(num_sessions),
                                 config.zipf_s);
  const ZipfSampler hotspot_zipf(static_cast<size_t>(num_hotspots),
                                 config.zipf_s);
  const double weights[kNumTrafficOpClasses] = {
      config.w_rect, config.w_polygon, config.w_knn, config.w_insert,
      config.w_update};
  double weight_total = 0.0;
  for (const double w : weights) weight_total += std::max(0.0, w);
  if (weight_total <= 0.0) weight_total = 1.0;

  const auto pick_query_window = [&](TrafficOp* op) {
    if (rng.NextBool(0.15)) {
      op->t_begin_ms = config.t0_ms;
      op->t_end_ms = config.t0_ms + config.span_ms;
      return;
    }
    const int64_t lo = config.t0_ms + static_cast<int64_t>(rng.NextBounded(
                                          static_cast<uint64_t>(config.span_ms)));
    const int64_t len = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(config.span_ms) *
                                rng.NextDouble(0.02, 0.6)));
    op->t_begin_ms = lo;
    op->t_end_ms = std::min(config.t0_ms + config.span_ms, lo + len);
  };
  const auto pick_query_rect = [&]() -> geo::Rect {
    if (rng.NextBool(0.7)) {
      // Hotspot-centred, Zipf-popular: the rect is the hotspot scaled by a
      // random factor (clamped to the region).
      const geo::Rect& hot = hotspots[hotspot_zipf.Sample(&rng)];
      const double scale = rng.NextDouble(0.4, 1.6);
      const double cx = (hot.lo.lon + hot.hi.lon) / 2.0;
      const double cy = (hot.lo.lat + hot.hi.lat) / 2.0;
      const double w = (hot.hi.lon - hot.lo.lon) * scale / 2.0;
      const double h = (hot.hi.lat - hot.lo.lat) * scale / 2.0;
      return geo::Rect{{std::max(config.region.lo.lon, cx - w),
                        std::max(config.region.lo.lat, cy - h)},
                       {std::min(config.region.hi.lon, cx + w),
                        std::min(config.region.hi.lat, cy + h)}};
    }
    const double w = region_w * std::pow(10.0, rng.NextDouble(-2.0, -0.5));
    const double h = region_h * std::pow(10.0, rng.NextDouble(-2.0, -0.5));
    const double x =
        rng.NextDouble(config.region.lo.lon, config.region.hi.lon - w);
    const double y =
        rng.NextDouble(config.region.lo.lat, config.region.hi.lat - h);
    return geo::Rect{{x, y}, {x + w, y + h}};
  };

  // Poisson arrivals: exponential inter-arrival gaps at the aggregate rate.
  double arrival_ms = 0.0;
  const double rate_per_ms =
      std::max(1e-9, config.arrivals_per_sec) / 1000.0;
  plan.ops.reserve(static_cast<size_t>(std::max(0, config.total_ops)));
  for (int i = 0; i < config.total_ops; ++i) {
    arrival_ms += -std::log(1.0 - rng.NextDouble()) / rate_per_ms;
    TrafficOp op;
    op.arrival_ms = arrival_ms;
    const int session = static_cast<int>(session_zipf.Sample(&rng));
    op.session = session;

    double pick = rng.NextDouble() * weight_total;
    int op_class = 0;
    for (; op_class < kNumTrafficOpClasses - 1; ++op_class) {
      pick -= std::max(0.0, weights[op_class]);
      if (pick < 0.0) break;
    }
    op.op_class = static_cast<TrafficOpClass>(op_class);
    // An update with nothing to correct degrades to an insert.
    if (op.op_class == TrafficOpClass::kUpdate &&
        live[static_cast<size_t>(session)].empty()) {
      op.op_class = TrafficOpClass::kInsert;
    }

    switch (op.op_class) {
      case TrafficOpClass::kRectQuery:
        op.rect = pick_query_rect();
        pick_query_window(&op);
        break;
      case TrafficOpClass::kPolygonQuery:
        op.rect = pick_query_rect();
        pick_query_window(&op);
        break;
      case TrafficOpClass::kKnnQuery: {
        op.rect = pick_query_rect();
        pick_query_window(&op);
        op.k = 4 + static_cast<uint32_t>(rng.NextBounded(16));
        break;
      }
      case TrafficOpClass::kInsert:
        emit_insert(&op, session);
        break;
      case TrafficOpClass::kUpdate: {
        std::vector<LiveReport>& mine = live[static_cast<size_t>(session)];
        const size_t victim = rng.NextBounded(mine.size());
        op.del_fid = mine[victim].fid;
        op.del_lon = mine[victim].lon;
        op.del_lat = mine[victim].lat;
        op.del_t_ms = mine[victim].t_ms;
        mine.erase(mine.begin() + static_cast<ptrdiff_t>(victim));
        emit_insert(&op, session);
        break;
      }
    }
    plan.ops.push_back(op);
  }

  for (int s = 0; s < num_sessions; ++s) {
    std::vector<int32_t>& fids =
        plan.sessions[static_cast<size_t>(s)].live_fids;
    for (const LiveReport& r : live[static_cast<size_t>(s)]) {
      fids.push_back(r.fid);
    }
    std::sort(fids.begin(), fids.end());
  }
  return plan;
}

Status PreloadTraffic(st::StStore* store, const TrafficPlan& plan) {
  for (const TrafficOp& op : plan.preload) {
    if (Status s = store->Insert(
            MakeTrafficDoc(op.lon, op.lat, op.doc_t_ms, op.fid));
        !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

namespace {

// One dispatcher entry: the next runnable op of a session, keyed by its
// scheduled arrival. Ops of a session enter the heap one at a time, so
// per-session order always holds; sessions race each other open-loop.
struct ReadyHead {
  double arrival_ms;
  int session;
  bool operator>(const ReadyHead& other) const {
    return arrival_ms > other.arrival_ms;
  }
};

struct WorkerStats {
  std::vector<double> latencies[kNumTrafficOpClasses];
  uint64_t errors[kNumTrafficOpClasses] = {};
};

// Executes one op against the store; returns false on an error the class
// counts (failed status, or an update that did not delete exactly one doc).
bool ExecuteOp(st::StStore* store, const TrafficOp& op) {
  switch (op.op_class) {
    case TrafficOpClass::kRectQuery:
      return store->Query(op.rect, op.t_begin_ms, op.t_end_ms)
          .cluster.status.ok();
    case TrafficOpClass::kPolygonQuery:
      return store
          ->QueryPolygon(InscribedHexagon(op.rect), op.t_begin_ms,
                         op.t_end_ms)
          .cluster.status.ok();
    case TrafficOpClass::kKnnQuery: {
      st::KnnOptions kopts;
      kopts.k = op.k;
      const geo::Point center{(op.rect.lo.lon + op.rect.hi.lon) / 2.0,
                              (op.rect.lo.lat + op.rect.hi.lat) / 2.0};
      (void)st::KnnQuery(*store, center, op.t_begin_ms, op.t_end_ms, kopts);
      return true;
    }
    case TrafficOpClass::kInsert:
      return store->Insert(MakeTrafficDoc(op.lon, op.lat, op.doc_t_ms, op.fid))
          .ok();
    case TrafficOpClass::kUpdate: {
      const geo::Rect point_rect{{op.del_lon, op.del_lat},
                                 {op.del_lon, op.del_lat}};
      const Result<uint64_t> removed =
          store->Delete(point_rect, op.del_t_ms, op.del_t_ms);
      bool ok = removed.ok() && *removed == 1;
      if (!store->Insert(MakeTrafficDoc(op.lon, op.lat, op.doc_t_ms, op.fid))
               .ok()) {
        ok = false;
      }
      return ok;
    }
  }
  return false;
}

}  // namespace

TrafficReport RunTraffic(st::StStore* store, const TrafficPlan& plan,
                         const TrafficRunOptions& options) {
  TrafficReport report;
  const size_t total = plan.ops.size();
  const double time_scale = std::max(1e-6, options.time_scale);
  report.offered_ops_per_sec =
      plan.config.arrivals_per_sec * time_scale;

  // Per-session op queues; each session's head enters the ready heap, and
  // completing an op releases the session's next one.
  const size_t num_sessions = plan.sessions.size();
  std::vector<std::vector<size_t>> session_ops(num_sessions);
  for (size_t i = 0; i < total; ++i) {
    session_ops[static_cast<size_t>(plan.ops[i].session)].push_back(i);
  }
  std::vector<size_t> session_next(num_sessions, 0);

  std::mutex mu;
  std::condition_variable cv;
  std::priority_queue<ReadyHead, std::vector<ReadyHead>, std::greater<>>
      ready;
  size_t completed = 0;
  for (size_t s = 0; s < num_sessions; ++s) {
    if (!session_ops[s].empty()) {
      ready.push(ReadyHead{plan.ops[session_ops[s][0]].arrival_ms,
                           static_cast<int>(s)});
    }
  }

  const int num_threads = std::max(1, options.threads);
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  const Clock::time_point start = Clock::now();

  const auto worker = [&](WorkerStats* my) {
    for (;;) {
      ReadyHead head{};
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return completed == total || !ready.empty(); });
        if (completed == total) return;
        head = ready.top();
        ready.pop();
      }
      const size_t session = static_cast<size_t>(head.session);
      const size_t op_index = session_ops[session][session_next[session]];
      const TrafficOp& op = plan.ops[op_index];

      // Open-loop: dispatch at the scheduled arrival; latency is measured
      // from it, so time spent queued behind a saturated store counts.
      const Clock::time_point scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          op.arrival_ms / time_scale));
      std::this_thread::sleep_until(scheduled);
      const bool ok = ExecuteOp(store, op);
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
              .count();

      const int op_class = static_cast<int>(op.op_class);
      my->latencies[op_class].push_back(latency_ms);
      if (!ok) ++my->errors[op_class];

      {
        const std::lock_guard<std::mutex> lock(mu);
        ++completed;
        if (++session_next[session] < session_ops[session].size()) {
          ready.push(ReadyHead{
              plan.ops[session_ops[session][session_next[session]]]
                  .arrival_ms,
              head.session});
        }
      }
      cv.notify_all();
    }
  };

  // Optional mid-run reshard: fires once half the ops have completed, while
  // the workers keep dispatching — exactly the live-migration scenario.
  std::thread resharder;
  if (options.reshard_midway) {
    resharder = std::thread([&] {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return completed * 2 >= total; });
      }
      const Clock::time_point begin = Clock::now();
      const Status s = store->Reshard(options.reshard_to);
      report.reshard_millis =
          std::chrono::duration<double, std::milli>(Clock::now() - begin)
              .count();
      report.reshard_ran = true;
      report.reshard_status = s;
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker, &stats[static_cast<size_t>(t)]);
  }
  for (std::thread& t : threads) t.join();
  if (resharder.joinable()) resharder.join();
  report.duration_sec =
      std::chrono::duration<double>(Clock::now() - start).count();

  report.per_class.resize(kNumTrafficOpClasses);
  for (int c = 0; c < kNumTrafficOpClasses; ++c) {
    TrafficClassStats& cls = report.per_class[static_cast<size_t>(c)];
    cls.op_class = static_cast<TrafficOpClass>(c);
    std::vector<double> all;
    for (const WorkerStats& w : stats) {
      all.insert(all.end(), w.latencies[c].begin(), w.latencies[c].end());
      cls.errors += w.errors[c];
    }
    cls.count = all.size();
    if (!all.empty()) {
      std::sort(all.begin(), all.end());
      cls.p50_ms = PercentileSorted(all, 50.0);
      cls.p95_ms = PercentileSorted(all, 95.0);
      cls.p99_ms = PercentileSorted(all, 99.0);
      cls.max_ms = all.back();
    }
    report.total_ops += cls.count;
    report.total_errors += cls.errors;
  }
  report.achieved_ops_per_sec =
      report.duration_sec > 0.0
          ? static_cast<double>(report.total_ops) / report.duration_sec
          : 0.0;
  return report;
}

uint64_t VerifyTrafficParity(const st::StStore& store,
                             const TrafficPlan& plan) {
  uint64_t divergences = 0;
  const int64_t t0 = plan.config.t0_ms;
  const int64_t t1 = plan.config.t0_ms + plan.config.span_ms;
  for (const TrafficSession& session : plan.sessions) {
    const st::StQueryResult result = store.Query(session.cell, t0, t1);
    std::vector<int32_t> got;
    got.reserve(result.cluster.docs.size());
    for (const bson::Document& doc : result.cluster.docs) {
      const bson::Value* v = doc.Get("fid");
      got.push_back(v == nullptr ? -1 : v->AsInt32());
    }
    std::sort(got.begin(), got.end());
    if (!result.cluster.status.ok() || got != session.live_fids) {
      ++divergences;
    }
  }
  return divergences;
}

std::string TrafficReport::ToJson() const {
  std::ostringstream out;
  out << "{\"duration_sec\": " << duration_sec
      << ", \"offered_ops_per_sec\": " << offered_ops_per_sec
      << ", \"achieved_ops_per_sec\": " << achieved_ops_per_sec
      << ", \"total_ops\": " << total_ops
      << ", \"total_errors\": " << total_errors << ", \"op_classes\": [";
  for (size_t i = 0; i < per_class.size(); ++i) {
    const TrafficClassStats& cls = per_class[i];
    if (i != 0) out << ", ";
    out << "{\"op\": \"" << TrafficOpClassName(cls.op_class)
        << "\", \"count\": " << cls.count << ", \"errors\": " << cls.errors
        << ", \"p50_ms\": " << cls.p50_ms << ", \"p95_ms\": " << cls.p95_ms
        << ", \"p99_ms\": " << cls.p99_ms << ", \"max_ms\": " << cls.max_ms
        << "}";
  }
  out << "]";
  if (reshard_ran) {
    out << ", \"reshard\": {\"status\": \""
        << (reshard_status.ok() ? "OK" : reshard_status.ToString())
        << "\", \"millis\": " << reshard_millis << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace stix::workload
