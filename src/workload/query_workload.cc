#include "workload/query_workload.h"

#include <algorithm>
#include <cassert>

namespace stix::workload {

geo::Rect SmallQueryRect() {
  return {{23.757495, 37.987295}, {23.766958, 37.992997}};
}

geo::Rect BigQueryRect() {
  return {{23.606039, 38.023982}, {24.032754, 38.353926}};
}

std::vector<StQuerySpec> MakeQuerySet(bool big, int64_t span_begin_ms,
                                      int64_t span_end_ms) {
  constexpr int64_t kHourMs = 3600LL * 1000;
  const int64_t durations[4] = {kHourMs, 24 * kHourMs, 7 * 24 * kHourMs,
                                30 * 24 * kHourMs};
  // Disjoint placement at fractions of the span; clamp so Q4 fits even in
  // the S set's 2.5-month span.
  const double offsets[4] = {0.10, 0.20, 0.35, 0.55};
  const int64_t span = span_end_ms - span_begin_ms;
  assert(span > durations[3] && "data span shorter than the longest query");

  const geo::Rect rect = big ? BigQueryRect() : SmallQueryRect();
  std::vector<StQuerySpec> out;
  int64_t prev_end = span_begin_ms;
  for (int i = 0; i < 4; ++i) {
    StQuerySpec q;
    q.name = "Q" + std::to_string(i + 1) + (big ? "^b" : "^s");
    q.rect = rect;
    int64_t begin =
        span_begin_ms + static_cast<int64_t>(offsets[i] * static_cast<double>(span));
    begin = std::max(begin, prev_end);  // keep the spans disjoint
    int64_t end = begin + durations[i];
    if (end > span_end_ms) {
      end = span_end_ms;
      begin = std::max(span_begin_ms, end - durations[i]);
    }
    q.t_begin_ms = begin;
    q.t_end_ms = end;
    prev_end = end;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace stix::workload
