#ifndef STIX_WORKLOAD_UNIFORM_GENERATOR_H_
#define STIX_WORKLOAD_UNIFORM_GENERATOR_H_

#include <cstdint>

#include "bson/document.h"
#include "common/rng.h"
#include "geo/geo.h"

namespace stix::workload {

/// The paper's synthetic S set: uniformly random (id, longitude, latitude,
/// date) records over a small MBR (1.54% of R's area) and half of R's time
/// span, with twice as many records.
struct UniformOptions {
  uint64_t seed = 11;
  uint64_t num_records = 500000;
  /// Paper S MBR: [(23.3, 37.6), (24.3, 38.5)].
  geo::Rect mbr = {{23.3, 37.6}, {24.3, 38.5}};
  int64_t t_begin_ms = 1530403200000;  ///< 2018-07-01T00:00:00Z
  int64_t t_end_ms = 1537012800000;    ///< 2018-09-15T12:00:00Z (2.5 months)
};

class UniformGenerator {
 public:
  explicit UniformGenerator(const UniformOptions& options)
      : options_(options), rng_(options.seed) {}

  /// Produces the next record; false when `num_records` have been emitted.
  /// Dates are random, so records arrive in *load* order, not time order —
  /// exactly what makes the S set's _id index compress differently from R's
  /// (paper A.3).
  bool Next(bson::Document* doc);

  const UniformOptions& options() const { return options_; }
  uint64_t emitted() const { return emitted_; }

  static geo::Rect PaperMbr() { return {{23.3, 37.6}, {24.3, 38.5}}; }

 private:
  UniformOptions options_;
  Rng rng_;
  uint64_t emitted_ = 0;
};

}  // namespace stix::workload

#endif  // STIX_WORKLOAD_UNIFORM_GENERATOR_H_
