#include "workload/uniform_generator.h"

namespace stix::workload {

bool UniformGenerator::Next(bson::Document* doc) {
  if (emitted_ >= options_.num_records) return false;
  *doc = bson::Document();
  doc->Append("id", bson::Value::Int64(static_cast<int64_t>(emitted_)));
  doc->Append("location",
              bson::Value::MakeDocument(bson::GeoJsonPoint(
                  rng_.NextDouble(options_.mbr.lo.lon, options_.mbr.hi.lon),
                  rng_.NextDouble(options_.mbr.lo.lat, options_.mbr.hi.lat))));
  doc->Append("date",
              bson::Value::DateTime(rng_.NextInt(options_.t_begin_ms,
                                                 options_.t_end_ms - 1)));
  ++emitted_;
  return true;
}

}  // namespace stix::workload
