#include "workload/csv_loader.h"

#include <cstdlib>
#include <fstream>

#include "common/strings.h"

namespace stix::workload {
namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseDateValue(const std::string& s, int64_t* millis) {
  if (ParseIsoDate(s, millis)) return true;
  // Fallback: epoch milliseconds.
  if (s.empty()) return false;
  char* end = nullptr;
  *millis = strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

Result<bson::Document> ParseCsvRecord(std::string_view line,
                                      const CsvSchema& schema) {
  const std::vector<std::string> columns = Split(line, schema.separator);
  const int needed = std::max(
      std::max(schema.id_column, schema.date_column),
      std::max(schema.longitude_column, schema.latitude_column));
  if (static_cast<int>(columns.size()) <= needed) {
    return Status::InvalidArgument("CSV record has too few columns: " +
                                   std::string(line));
  }

  double lon, lat;
  if (!ParseDouble(columns[schema.longitude_column], &lon) ||
      !ParseDouble(columns[schema.latitude_column], &lat)) {
    return Status::InvalidArgument("bad coordinates in CSV record");
  }
  if (lon < -180.0 || lon > 180.0 || lat < -90.0 || lat > 90.0) {
    return Status::InvalidArgument("coordinates out of range");
  }
  int64_t millis;
  if (!ParseDateValue(columns[schema.date_column], &millis)) {
    return Status::InvalidArgument("bad date in CSV record: " +
                                   columns[schema.date_column]);
  }

  bson::Document doc;
  doc.Append("id", bson::Value::String(columns[schema.id_column]));
  doc.Append("location",
             bson::Value::MakeDocument(bson::GeoJsonPoint(lon, lat)));
  doc.Append("date", bson::Value::DateTime(millis));
  return doc;
}

Result<uint64_t> LoadCsvFile(const std::string& path, const CsvSchema& schema,
                             st::StStore* store) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::string line;
  uint64_t loaded = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && schema.has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    Result<bson::Document> doc = ParseCsvRecord(line, schema);
    if (!doc.ok()) return doc.status();
    const Status s = store->Insert(std::move(*doc));
    if (!s.ok()) return s;
    ++loaded;
  }
  return loaded;
}

}  // namespace stix::workload
