#ifndef STIX_WORKLOAD_TRAFFIC_H_
#define STIX_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/geo.h"
#include "st/approach.h"

namespace stix::st {
class StStore;
}

namespace stix::workload {

/// Zipf(s) sampler over ranks 0..n-1 (rank 0 hottest): P(k) ∝ 1/(k+1)^s,
/// realized by binary search over a precomputed CDF. The classic YCSB-style
/// hotspot model — a handful of ranks absorb most of the traffic.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Operation classes of the traffic mix.
enum class TrafficOpClass : uint8_t {
  kRectQuery = 0,  ///< Spatio-temporal rectangle query.
  kPolygonQuery,   ///< Hexagon inscribed in a rect (complex geometry).
  kKnnQuery,       ///< Expanding-ring k-nearest-neighbour probe.
  kInsert,         ///< New position report into the session's cell.
  kUpdate,         ///< Position correction: delete one report, insert another.
};
inline constexpr int kNumTrafficOpClasses = 5;

const char* TrafficOpClassName(TrafficOpClass op_class);

/// Traffic-shape knobs. The whole op sequence is a pure function of this
/// struct: same config, byte-identical plan (the repro contract every other
/// generator in workload/ follows).
struct TrafficConfig {
  uint64_t seed = 1;
  /// Simulated user sessions. Each session owns a private micro-cell of the
  /// region (disjoint from every other session's) that all its inserts land
  /// in — the post-quiesce parity oracle queries exactly these cells.
  int num_sessions = 1000;
  /// Total operations across all sessions (the per-session share is Zipfian:
  /// low-rank sessions are the hot keys).
  int total_ops = 20000;
  /// Documents pre-inserted per session before the clock starts, so early
  /// queries see data and updates have something to correct.
  int preload_per_session = 2;
  /// Aggregate Poisson arrival rate at time_scale 1.0.
  double arrivals_per_sec = 4000.0;
  /// Zipf exponent for both session activity and query-hotspot popularity.
  double zipf_s = 1.1;
  /// Query hotspots: fixed cells whose popularity is Zipf-ranked.
  int num_hotspots = 64;
  /// Op mix weights (normalized internally).
  double w_rect = 0.40;
  double w_polygon = 0.08;
  double w_knn = 0.07;
  double w_insert = 0.30;
  double w_update = 0.15;
  /// The world the traffic lives in (defaults to the paper's Athens region).
  geo::Rect region = {{23.3, 37.6}, {24.3, 38.5}};
  int64_t t0_ms = 1538352000000;  ///< 2018-10-01T00:00:00Z
  int64_t span_ms = 7 * 24 * 3600000LL;
};

/// One scheduled operation. Queries carry rect/time (+k for kNN); inserts
/// carry the new document; updates additionally carry the exact point+time
/// of the report they replace.
struct TrafficOp {
  TrafficOpClass op_class = TrafficOpClass::kRectQuery;
  int32_t session = 0;
  double arrival_ms = 0.0;  ///< Offset from traffic start at time_scale 1.

  // Insert/update payload: the new report.
  double lon = 0.0;
  double lat = 0.0;
  int64_t doc_t_ms = 0;
  int32_t fid = -1;

  // Update payload: the report being replaced (deleted first).
  double del_lon = 0.0;
  double del_lat = 0.0;
  int64_t del_t_ms = 0;
  int32_t del_fid = -1;

  // Query payload.
  geo::Rect rect = {{0, 0}, {0, 0}};
  int64_t t_begin_ms = 0;
  int64_t t_end_ms = 0;
  uint32_t k = 0;  ///< kNN only.
};

/// Generation-time ground truth for one session: its private cell and the
/// fids that must be exactly the cell's contents once the run quiesces.
struct TrafficSession {
  geo::Rect cell = {{0, 0}, {0, 0}};
  std::vector<int32_t> live_fids;  ///< Sorted ascending.
};

/// A fully materialized traffic plan: preload documents, the timed op
/// sequence (ascending arrival_ms) and the per-session parity oracle.
struct TrafficPlan {
  TrafficConfig config;
  std::vector<TrafficOp> preload;  ///< Inserts applied before the clock.
  std::vector<TrafficOp> ops;
  std::vector<TrafficSession> sessions;

  /// Canonical byte serialization of preload + ops — two plans are the same
  /// workload iff these bytes match (the determinism regression compares
  /// them directly).
  std::string SerializeOps() const;

  /// FNV-1a hash of SerializeOps(), hex — a short repro fingerprint.
  std::string Fingerprint() const;
};

/// Generates the plan. Deterministic: no wall clock, no global state.
TrafficPlan GenerateTrafficPlan(const TrafficConfig& config);

/// Latency summary of one op class, nearest-rank percentiles (the
/// BENCH-gate convention) over open-loop latencies: completion time minus
/// *scheduled* arrival, so queueing delay behind a saturated store counts.
struct TrafficClassStats {
  TrafficOpClass op_class = TrafficOpClass::kRectQuery;
  uint64_t count = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Outcome of one open-loop run.
struct TrafficReport {
  double duration_sec = 0.0;
  double offered_ops_per_sec = 0.0;
  double achieved_ops_per_sec = 0.0;
  uint64_t total_ops = 0;
  uint64_t total_errors = 0;
  std::vector<TrafficClassStats> per_class;  ///< One entry per op class.
  bool reshard_ran = false;
  Status reshard_status;
  double reshard_millis = 0.0;

  std::string ToJson() const;
};

/// Runtime knobs (everything workload-shaped lives in TrafficConfig).
struct TrafficRunOptions {
  /// Dispatcher threads executing sessions. Queries still fan out on the
  /// store's executor pool; these threads only drive the op streams.
  int threads = 8;
  /// Multiplies the offered arrival rate (sweep axis): scheduled arrival
  /// times shrink by this factor.
  double time_scale = 1.0;
  /// Fire StStore::Reshard(reshard_to) from a controller thread once half
  /// the ops have completed, while traffic keeps flowing.
  bool reshard_midway = false;
  st::ApproachKind reshard_to = st::ApproachKind::kHil;
};

/// Applies the plan's preload inserts synchronously (before the clock
/// starts). Non-OK on the first failed insert.
Status PreloadTraffic(st::StStore* store, const TrafficPlan& plan);

/// Drives the plan open-loop: ops dispatch at their scheduled arrival times
/// (ops of one session stay ordered; a backlogged session's queueing delay
/// is charged to latency). Returns the latency/throughput report.
TrafficReport RunTraffic(st::StStore* store, const TrafficPlan& plan,
                         const TrafficRunOptions& options);

/// Post-quiesce parity oracle: queries every session's private cell over
/// the full time span and compares the returned fids against the plan's
/// ground truth. Returns the number of diverging sessions (0 = exact).
uint64_t VerifyTrafficParity(const st::StStore& store,
                             const TrafficPlan& plan);

}  // namespace stix::workload

#endif  // STIX_WORKLOAD_TRAFFIC_H_
