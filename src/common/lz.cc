#include "common/lz.h"

#include <cstring>
#include <vector>

namespace stix {
namespace {

// Format: sequence of ops.
//   Literal: 0x00 tag byte, varint length, raw bytes.
//   Copy:    0x01 tag byte, varint offset (back-distance), varint length.
// Varint = LEB128.

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t b = static_cast<uint8_t>(**p);
    ++*p;
    *v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1 << kHashBits;

uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiteral(const char* lit_start, const char* lit_end,
                  std::string* out) {
  if (lit_start == lit_end) return;
  out->push_back(0x00);
  PutVarint(static_cast<uint64_t>(lit_end - lit_start), out);
  out->append(lit_start, lit_end - lit_start);
}

}  // namespace

std::string LzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  PutVarint(input.size(), &out);
  if (input.size() < kMinMatch + 1) {
    FlushLiteral(input.data(), input.data() + input.size(), &out);
    return out;
  }

  std::vector<int64_t> table(kHashSize, -1);
  const char* base = input.data();
  const char* end = base + input.size();
  const char* p = base;
  const char* lit_start = base;
  const char* match_limit = end - kMinMatch;

  while (p <= match_limit) {
    const uint32_t h = Hash4(p);
    const int64_t cand = table[h];
    table[h] = p - base;
    if (cand >= 0 && std::memcmp(base + cand, p, kMinMatch) == 0) {
      // Extend the match forward.
      const char* cp = base + cand + kMinMatch;
      const char* mp = p + kMinMatch;
      while (mp < end && *cp == *mp) {
        ++cp;
        ++mp;
      }
      const size_t len = static_cast<size_t>(mp - p);
      FlushLiteral(lit_start, p, &out);
      out.push_back(0x01);
      PutVarint(static_cast<uint64_t>(p - (base + cand)), &out);
      PutVarint(len, &out);
      p += len;
      lit_start = p;
    } else {
      ++p;
    }
  }
  FlushLiteral(lit_start, end, &out);
  return out;
}

Result<std::string> LzDecompress(std::string_view compressed) {
  const char* p = compressed.data();
  const char* end = p + compressed.size();
  uint64_t total;
  if (!GetVarint(&p, end, &total)) {
    return Status::Corruption("lz: bad header");
  }
  std::string out;
  out.reserve(total);
  while (p < end) {
    const uint8_t tag = static_cast<uint8_t>(*p++);
    if (tag == 0x00) {
      uint64_t len;
      if (!GetVarint(&p, end, &len) ||
          static_cast<uint64_t>(end - p) < len) {
        return Status::Corruption("lz: bad literal");
      }
      out.append(p, len);
      p += len;
    } else if (tag == 0x01) {
      uint64_t offset, len;
      if (!GetVarint(&p, end, &offset) || !GetVarint(&p, end, &len) ||
          offset == 0 || offset > out.size()) {
        return Status::Corruption("lz: bad copy");
      }
      // Byte-by-byte: copies may overlap their own output (RLE-style).
      size_t src = out.size() - static_cast<size_t>(offset);
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src++]);
      }
    } else {
      return Status::Corruption("lz: bad tag");
    }
  }
  if (out.size() != total) {
    return Status::Corruption("lz: length mismatch");
  }
  return out;
}

}  // namespace stix
