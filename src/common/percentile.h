#ifndef STIX_COMMON_PERCENTILE_H_
#define STIX_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace stix {

// Nearest-rank percentile (the convention used by every BENCH_*.json gate):
// the p-th percentile of N sorted samples is the value at one-based rank
// ceil(p/100 * N), i.e. the smallest sample such that at least p percent of
// the samples are <= it. Unlike linear interpolation this always returns an
// observed sample, so a gate like "p99 < 250 ms" can never be satisfied by a
// synthetic value that no request actually experienced.
//
// `sorted` must be ascending. p is clamped to [0, 100]; an empty input
// yields 0.0.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(clamped / 100.0 * n));
  if (rank == 0) rank = 1;  // p == 0 means "the minimum"
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

// Convenience overload that sorts a copy.
inline double PercentileOf(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

}  // namespace stix

#endif  // STIX_COMMON_PERCENTILE_H_
