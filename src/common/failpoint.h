#ifndef STIX_COMMON_FAILPOINT_H_
#define STIX_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace stix {

/// A named fault-injection site, modeled on MongoDB's failpoint mechanism:
/// production code evaluates the point at interesting places (B+tree splits,
/// shard getMore, the router merge, the replan path, chunk migration) and
/// tests/fuzzers activate it by name to inject a delay or an error — or, for
/// sites like the replan path, to force a rarely-taken branch.
///
/// Evaluation is one relaxed atomic load while disabled, so instrumented hot
/// paths cost nothing in normal operation. Mode/counter updates are mutex-
/// guarded, making concurrent evaluation from the fan-out pool safe.
class FailPoint {
 public:
  /// Activation modes (MongoDB's failpoint grammar).
  enum class Mode {
    kOff,       ///< Never fires.
    kAlwaysOn,  ///< Fires on every evaluation until disabled.
    kTimes,     ///< Fires for the next `count` evaluations, then disables.
    kSkip,      ///< Skips the first `count` evaluations, then fires always.
  };

  /// One activation: a mode plus the action taken when the point fires.
  /// `delay_ms > 0` sleeps before returning; `error_code != kOk` makes the
  /// evaluation return that error (sites without a Status channel honor the
  /// delay and ignore the error action).
  struct Config {
    Mode mode = Mode::kAlwaysOn;
    uint64_t count = 0;
    double delay_ms = 0.0;
    StatusCode error_code = StatusCode::kOk;
    std::string error_message;
  };

  /// Constructs and registers the point under `name` (process lifetime;
  /// use the STIX_FAIL_POINT_DEFINE macro at namespace scope in the site's
  /// translation unit).
  explicit FailPoint(const char* name);

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  /// Arms the point; resets the fire/entry counters.
  void Enable(Config config);

  /// Disarms the point (counters are preserved for inspection).
  void Disable();

  /// Fast check for instrumentation sites.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Evaluates the point. nullopt when disabled, skipped, or exhausted.
  /// When it fires: sleeps the configured delay, then returns the configured
  /// error action (an OK Status for delay-only activations).
  std::optional<Status> Evaluate();

  /// Evaluations that saw the point enabled (since the last Enable).
  uint64_t times_entered() const {
    return entered_.load(std::memory_order_relaxed);
  }

  /// Times the point actually fired (since the last Enable).
  uint64_t times_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> entered_{0};
  std::atomic<uint64_t> fired_{0};
  mutable std::mutex mu_;
  Config config_;  // guarded by mu_
};

/// Process-wide name -> FailPoint directory. Sites self-register at static
/// initialization; tests and the fuzz driver look them up by name.
class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  void Register(FailPoint* point);

  /// nullptr when no site carries that name.
  FailPoint* Find(const std::string& name) const;

  /// Registered site names, sorted (for --list style diagnostics).
  std::vector<std::string> Names() const;

  /// Disarms every registered point (test teardown hygiene).
  void DisableAll();

 private:
  FailPointRegistry() = default;
  mutable std::mutex mu_;
  std::vector<FailPoint*> points_;
};

/// Convenience for error-capable sites:
///   if (Status s = CheckFailPoint(myPoint); !s.ok()) return s;
/// Fires the point's delay as a side effect; returns OK when the point did
/// not fire or carries no error action.
inline Status CheckFailPoint(FailPoint& point) {
  if (!point.enabled()) return Status::OK();
  const std::optional<Status> fired = point.Evaluate();
  return fired.has_value() ? *fired : Status::OK();
}

/// Defines a registered fail point at namespace scope:
///   STIX_FAIL_POINT_DEFINE(btreeNodeSplit);
/// creates a FailPoint variable `btreeNodeSplit` registered as
/// "btreeNodeSplit".
#define STIX_FAIL_POINT_DEFINE(name) ::stix::FailPoint name(#name)

}  // namespace stix

#endif  // STIX_COMMON_FAILPOINT_H_
