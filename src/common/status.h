#ifndef STIX_COMMON_STATUS_H_
#define STIX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stix {

/// Error category for a failed operation. Mirrors the coarse error taxonomy of
/// storage engines (RocksDB-style): callers branch on the code, humans read
/// the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kInternal,
};

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation). Used instead of exceptions on all hot paths.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad field".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or the Status explaining why there is none.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace stix

#endif  // STIX_COMMON_STATUS_H_
