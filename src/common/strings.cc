#include "common/strings.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace stix {

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g always round-trips but is noisy; try increasing precision until the
  // parse round-trips.
  for (int prec = 6; prec <= 17; ++prec) {
    snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string FormatFixed(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string WithThousands(int64_t v) {
  char digits[32];
  snprintf(digits, sizeof(digits), "%" PRId64, v < 0 ? -v : v);
  std::string out = v < 0 ? "-" : "";
  const size_t n = std::char_traits<char>::length(digits);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), u == 0 ? "%.0f %s" : "%.2f %s", v, units[u]);
  return buf;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatIsoDate(int64_t millis) {
  const time_t secs = static_cast<time_t>(millis / 1000);
  const int ms = static_cast<int>(millis % 1000 < 0 ? millis % 1000 + 1000
                                                    : millis % 1000);
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
           tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
           tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, ms);
  return buf;
}

bool ParseIsoDate(std::string_view s, int64_t* millis_out) {
  struct tm tm_utc = {};
  int ms = 0;
  // Fixed layout: YYYY-MM-DDTHH:MM:SS[.mmm][Z]
  if (s.size() < 19) return false;
  char buf[32];
  const size_t n = s.size() < sizeof(buf) - 1 ? s.size() : sizeof(buf) - 1;
  s.copy(buf, n);
  buf[n] = '\0';
  int year, mon, day, hour, min, sec;
  const int matched = sscanf(buf, "%d-%d-%dT%d:%d:%d.%d", &year, &mon, &day,
                             &hour, &min, &sec, &ms);
  if (matched < 6) return false;
  if (matched == 6) ms = 0;
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = mon - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = min;
  tm_utc.tm_sec = sec;
  const time_t secs = timegm(&tm_utc);
  if (secs == static_cast<time_t>(-1)) return false;
  *millis_out = static_cast<int64_t>(secs) * 1000 + ms;
  return true;
}

}  // namespace stix
