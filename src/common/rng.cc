#include "common/rng.h"

#include <cmath>

namespace stix {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace stix
