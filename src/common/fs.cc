#include "common/fs.h"

#include <algorithm>
#include <filesystem>
#include <random>

namespace stix {
namespace fs = std::filesystem;

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec && !fs::is_directory(path)) {
    return Status::Internal("create_directories(" + path +
                            "): " + ec.message());
  }
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::Internal("remove_all(" + path + "): " + ec.message());
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::Internal("remove(" + path + "): " + ec.message());
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::Internal("rename(" + from + " -> " + to +
                            "): " + ec.message());
  }
  return Status::OK();
}

Status ResizeFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::Internal("resize_file(" + path + "): " + ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("file_size(" + path + "): " + ec.message());
  return size;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const fs::directory_entry& entry : it) {
    std::error_code type_ec;
    if (entry.is_regular_file(type_ec)) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  std::random_device rd;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t nonce =
        (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd());
    const fs::path candidate = fs::temp_directory_path() /
                               (prefix + "_" + std::to_string(nonce));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      return candidate.string();
    }
  }
  return Status::Internal("could not create a unique temp dir for prefix " +
                          prefix);
}

}  // namespace stix
