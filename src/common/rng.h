#ifndef STIX_COMMON_RNG_H_
#define STIX_COMMON_RNG_H_

#include <cstdint>

namespace stix {

/// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
/// Every data generator and test in this repo derives its randomness from an
/// explicit seed so experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Derives an independent generator; useful to give each worker / vehicle
  /// its own stream while keeping global determinism.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace stix

#endif  // STIX_COMMON_RNG_H_
