#ifndef STIX_COMMON_FS_H_
#define STIX_COMMON_FS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stix {

/// Thin std::filesystem wrappers returning Status instead of throwing —
/// the durable storage layer (WAL, checkpoints) and the test TempDir
/// fixture share them so error handling stays uniform.

/// Creates `path` and any missing parents (OK if it already exists).
Status CreateDirs(const std::string& path);

/// Recursively deletes `path` (OK if it does not exist).
Status RemoveAll(const std::string& path);

/// Removes a single file (OK if it does not exist).
Status RemoveFile(const std::string& path);

/// Atomically replaces `to` with `from` (rename(2) semantics).
Status RenameFile(const std::string& from, const std::string& to);

/// Truncates or extends a file to `size` bytes.
Status ResizeFile(const std::string& path, uint64_t size);

bool FileExists(const std::string& path);

/// Size in bytes; NotFound when the file does not exist.
Result<uint64_t> FileSize(const std::string& path);

/// Regular files directly inside `dir`, as full paths, sorted by name.
/// Empty when the directory does not exist.
std::vector<std::string> ListDir(const std::string& dir);

/// Creates a fresh, uniquely named directory under the system temp root
/// (prefix + randomness). Unique across concurrent processes — `ctest -j`
/// runs many test binaries at once.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace stix

#endif  // STIX_COMMON_FS_H_
