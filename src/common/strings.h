#ifndef STIX_COMMON_STRINGS_H_
#define STIX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stix {

/// Formats a double with enough digits to round-trip but without trailing
/// noise ("23.72" not "23.719999999999999").
std::string FormatDouble(double v);

/// Formats with a fixed number of decimals.
std::string FormatFixed(double v, int decimals);

/// 1234567 -> "1,234,567" (used by benchmark tables).
std::string WithThousands(int64_t v);

/// Bytes -> human readable ("1.2 MB").
std::string HumanBytes(uint64_t bytes);

/// Splits on a single character; keeps empty tokens.
std::vector<std::string> Split(std::string_view s, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Milliseconds since epoch -> "2018-10-01T08:34:40.067Z".
std::string FormatIsoDate(int64_t millis);

/// Parses "2018-10-01T08:34:40" (optionally with ".mmm" / trailing "Z") to
/// milliseconds since epoch. Returns false on malformed input.
bool ParseIsoDate(std::string_view s, int64_t* millis_out);

}  // namespace stix

#endif  // STIX_COMMON_STRINGS_H_
