#include "common/thread_pool.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace stix {
namespace {

std::atomic<uint64_t> g_threads_started{0};

}  // namespace

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

uint64_t ThreadPool::threads_started() {
  return g_threads_started.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    g_threads_started.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Fan-out pool pressure for ServerStatus: instantaneous queue depth (with
  // its high-water mark) and per-task run latency.
  STIX_METRIC_GAUGE(queue_depth, "fanout.queue_depth");
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  queue_depth.Add(1);
  queue_depth.UpdateMax();
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    STIX_METRIC_GAUGE(queue_depth, "fanout.queue_depth");
    STIX_METRIC_HISTOGRAM(task_micros, "fanout.task_micros");
    STIX_METRIC_COUNTER(tasks_done, "fanout.tasks_completed");
    queue_depth.Sub(1);
    Stopwatch task_timer;
    task();
    task_micros.Observe(static_cast<uint64_t>(task_timer.ElapsedMicros()));
    tasks_done.Increment();
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->pending;
  }
  pool_->Submit([state = state_, task = std::move(task)] {
    task();
    // Notify under the lock: the waiter may destroy the TaskGroup as soon
    // as pending hits 0, but `state` is kept alive by this closure.
    std::lock_guard<std::mutex> lock(state->mu);
    --state->pending;
    state->done.notify_all();
  });
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
}

}  // namespace stix
