#ifndef STIX_COMMON_STOPWATCH_H_
#define STIX_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace stix {

/// Monotonic wall-clock stopwatch used by the query executor and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stix

#endif  // STIX_COMMON_STOPWATCH_H_
