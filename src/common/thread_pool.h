#ifndef STIX_COMMON_THREAD_POOL_H_
#define STIX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stix {

/// Fixed-size worker pool. The cluster owns one long-lived instance sized to
/// the host's concurrency and the router fans every query out on it, so no
/// query ever pays thread start-up; the single-machine reproduction still
/// *measures* per-shard time separately (see Router), so correctness does
/// not depend on physical parallelism.
///
/// Concurrent queries share the pool safely through TaskGroup, which scopes
/// completion tracking to one batch of tasks instead of the whole pool.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may run in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (pool-wide; prefer
  /// TaskGroup::Wait when multiple clients share the pool).
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks fully executed by this pool over its lifetime.
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

  /// hardware_concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static int DefaultThreads();

  /// Process-wide count of OS threads ever started by any ThreadPool.
  /// Lets tests assert that running queries does not create threads.
  static uint64_t threads_started();

  /// Completion tracking for one batch of tasks submitted to a shared pool.
  /// Each concurrent client (e.g. one in-flight query) uses its own group;
  /// Wait() returns when *this group's* tasks are done, regardless of what
  /// other clients have in flight.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool)
        : pool_(pool), state_(std::make_shared<State>()) {}
    ~TaskGroup() { Wait(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Submit(std::function<void()> task);
    void Wait();

   private:
    // Shared with in-flight task wrappers so a worker finishing after the
    // group object is destroyed never touches freed memory.
    struct State {
      std::mutex mu;
      std::condition_variable done;
      int pending = 0;
    };

    ThreadPool* pool_;
    std::shared_ptr<State> state_;
  };

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::atomic<uint64_t> tasks_completed_{0};
};

}  // namespace stix

#endif  // STIX_COMMON_THREAD_POOL_H_
