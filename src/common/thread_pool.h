#ifndef STIX_COMMON_THREAD_POOL_H_
#define STIX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stix {

/// Fixed-size worker pool. Used by the router to fan a query out to shards;
/// the single-machine reproduction still *measures* per-shard time separately
/// (see Router), so correctness does not depend on physical parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may run in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace stix

#endif  // STIX_COMMON_THREAD_POOL_H_
