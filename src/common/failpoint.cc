#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace stix {

FailPoint::FailPoint(const char* name) : name_(name) {
  FailPointRegistry::Instance().Register(this);
}

void FailPoint::Enable(Config config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
  entered_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  enabled_.store(config_.mode != Mode::kOff, std::memory_order_release);
}

void FailPoint::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  config_.mode = Mode::kOff;
  enabled_.store(false, std::memory_order_release);
}

std::optional<Status> FailPoint::Evaluate() {
  if (!enabled()) return std::nullopt;

  bool fire = false;
  double delay_ms = 0.0;
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return std::nullopt;
    entered_.fetch_add(1, std::memory_order_relaxed);
    switch (config_.mode) {
      case Mode::kOff:
        return std::nullopt;
      case Mode::kAlwaysOn:
        fire = true;
        break;
      case Mode::kTimes:
        if (config_.count > 0) {
          --config_.count;
          fire = true;
          if (config_.count == 0) {
            config_.mode = Mode::kOff;
            enabled_.store(false, std::memory_order_release);
          }
        }
        break;
      case Mode::kSkip:
        if (config_.count > 0) {
          --config_.count;
        } else {
          fire = true;
        }
        break;
    }
    if (fire) {
      delay_ms = config_.delay_ms;
      error_code = config_.error_code;
      error_message = config_.error_message;
    }
  }
  if (!fire) return std::nullopt;

  fired_.fetch_add(1, std::memory_order_relaxed);
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  if (error_code != StatusCode::kOk) {
    if (error_message.empty()) {
      error_message = "fail point " + name_ + " triggered";
    }
    return Status(error_code, std::move(error_message));
  }
  return Status::OK();
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry registry;
  return registry;
}

void FailPointRegistry::Register(FailPoint* point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(point);
}

FailPoint* FailPointRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailPoint* point : points_) {
    if (point->name() == name) return point;
  }
  return nullptr;
}

std::vector<std::string> FailPointRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const FailPoint* point : points_) names.push_back(point->name());
  std::sort(names.begin(), names.end());
  return names;
}

void FailPointRegistry::DisableAll() {
  std::vector<FailPoint*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = points_;
  }
  for (FailPoint* point : snapshot) point->Disable();
}

}  // namespace stix
