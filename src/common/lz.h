#ifndef STIX_COMMON_LZ_H_
#define STIX_COMMON_LZ_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace stix {

/// A small snappy-style LZ77 byte compressor: greedy hash-table matching,
/// varint-tagged literal/copy ops. It exists so the storage engine can
/// account for on-disk block compression (WiredTiger's default) with a real
/// algorithm rather than a made-up ratio; the paper's Table 6 and Fig. 14
/// sizes depend on how well trajectory documents compress.
std::string LzCompress(std::string_view input);

/// Inverse of LzCompress. Fails with Corruption on malformed input.
Result<std::string> LzDecompress(std::string_view compressed);

}  // namespace stix

#endif  // STIX_COMMON_LZ_H_
