#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <thread>

namespace stix {

size_t Counter::StripeIndex() {
  // Thread-id hash folded to a stripe; stable per thread, spreads the pool
  // workers across cache lines without any registration protocol.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripe;
}

namespace {

size_t BucketFor(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

/// Inclusive value range covered by bucket b (see Histogram's contract).
void BucketRange(size_t b, double* lo, double* hi) {
  if (b == 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  *lo = std::ldexp(1.0, static_cast<int>(b) - 1);
  *hi = std::ldexp(1.0, static_cast<int>(b)) - 1.0;
}

}  // namespace

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) >= target) {
      double lo, hi;
      BucketRange(b, &lo, &hi);
      const double within =
          buckets[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) / double(buckets[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

void Histogram::Observe(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, _] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) names.push_back(name);
  return names;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    Entry e;
    e.name = name;
    e.counter = c->value();
    snap.counters.push_back(std::move(e));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    Entry e;
    e.name = name;
    e.gauge = g->value();
    e.gauge_max = g->max_value();
    snap.gauges.push_back(std::move(e));
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Entry e;
    e.name = name;
    e.histo = h->Snap();
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

namespace {

void AppendJsonDouble(std::ostringstream* out, double v) {
  if (!std::isfinite(v)) {
    *out << "0";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(6);
  tmp << std::fixed << v;
  *out << tmp.str();
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  out << "{\"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    const Entry& e = snap.counters[i];
    if (i > 0) out << ", ";
    out << "\"" << e.name << "\": " << e.counter;
  }
  out << "}, \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const Entry& e = snap.gauges[i];
    if (i > 0) out << ", ";
    out << "\"" << e.name << "\": {\"value\": " << e.gauge
        << ", \"max\": " << e.gauge_max << "}";
  }
  out << "}, \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const Entry& e = snap.histograms[i];
    if (i > 0) out << ", ";
    out << "\"" << e.name << "\": {\"count\": " << e.histo.count
        << ", \"sum\": " << e.histo.sum << ", \"mean\": ";
    AppendJsonDouble(&out, e.histo.Mean());
    out << ", \"p50\": ";
    AppendJsonDouble(&out, e.histo.Quantile(0.5));
    out << ", \"p95\": ";
    AppendJsonDouble(&out, e.histo.Quantile(0.95));
    out << ", \"p99\": ";
    AppendJsonDouble(&out, e.histo.Quantile(0.99));
    out << ", \"max\": " << e.histo.max << "}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

}  // namespace stix
