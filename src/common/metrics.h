#ifndef STIX_COMMON_METRICS_H_
#define STIX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stix {

/// A monotonically increasing counter striped across cache lines so that
/// concurrent increments from the fan-out pool do not contend on one word.
/// Increment is a relaxed fetch_add on the stripe owned by the calling
/// thread; value() sums the stripes (snapshot-on-read — the sum is not a
/// linearizable point, which is fine for monitoring).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Test hygiene only; racing with Increment may lose concurrent adds.
  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  static size_t StripeIndex();
  Stripe stripes_[kStripes];
};

/// A point-in-time signed value (queue depth, cache size). Single atomic —
/// gauges are written from one logical owner at a time and read rarely.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() {
    Set(0);
    max_.store(0, std::memory_order_relaxed);
  }

  /// High-water mark maintained alongside the gauge (best-effort CAS loop;
  /// used for queue-depth peaks where an instantaneous read would miss the
  /// interesting moments).
  void UpdateMax() {
    const int64_t cur = value();
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (cur > prev &&
           !max_.compare_exchange_weak(prev, cur, std::memory_order_relaxed)) {
    }
  }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Base-2 exponential histogram: Observe(v) lands v in bucket
/// floor(log2(v))+1 (v==0 in bucket 0), so bucket b spans [2^(b-1), 2^b).
/// Covers the full uint64 range in 65 buckets with one relaxed fetch_add
/// per observation. Quantiles are estimated by linear interpolation inside
/// the covering bucket — plenty for latency dashboards.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[kBuckets] = {};

    double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }
    /// q in [0, 1]; e.g. Quantile(0.99).
    double Quantile(double q) const;
  };

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t v);
  Snapshot Snap() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Process-wide name -> metric directory, mirroring FailPointRegistry: call
/// sites fetch a reference once (function-local static) and touch only the
/// metric's own atomics afterwards, so instrumentation on hot paths costs a
/// relaxed fetch_add. Metrics live for the process — references never
/// dangle. Names use dotted paths ("btree.splits", "plan_cache.hits").
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Registered names, sorted, for diagnostics.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// One metric rendered for a snapshot dump.
  struct Entry {
    std::string name;
    uint64_t counter = 0;        // counters
    int64_t gauge = 0;           // gauges (value)
    int64_t gauge_max = 0;       // gauges (high-water)
    Histogram::Snapshot histo;   // histograms
  };
  struct Snapshot {
    std::vector<Entry> counters;
    std::vector<Entry> gauges;
    std::vector<Entry> histograms;
  };
  Snapshot Snap() const;

  /// Snapshot rendered as a JSON object: {"counters": {...}, "gauges":
  /// {"name": {"value": v, "max": m}}, "histograms": {"name": {"count": c,
  /// "sum": s, "mean": m, "p50": .., "p95": .., "p99": .., "max": ..}}}.
  std::string ToJson() const;

  /// Zeroes every registered metric (names stay registered). Tests only.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Declares a cached registry handle at a call site:
///   STIX_METRIC_COUNTER(splits, "btree.splits");
///   splits.Increment();
#define STIX_METRIC_COUNTER(var, name)        \
  static ::stix::Counter& var =               \
      ::stix::MetricsRegistry::Instance().GetCounter(name)
#define STIX_METRIC_GAUGE(var, name)          \
  static ::stix::Gauge& var =                 \
      ::stix::MetricsRegistry::Instance().GetGauge(name)
#define STIX_METRIC_HISTOGRAM(var, name)      \
  static ::stix::Histogram& var =             \
      ::stix::MetricsRegistry::Instance().GetHistogram(name)

}  // namespace stix

#endif  // STIX_COMMON_METRICS_H_
