#include "keystring/keystring.h"

#include <cassert>
#include <cstring>

namespace stix::keystring {
namespace {

// Discriminator bytes, spaced out so new types can slot in. Order follows
// bson::CanonicalTypeRank.
constexpr uint8_t kMinKeyByte = 0x00;
constexpr uint8_t kNullByte = 0x10;
constexpr uint8_t kNumberByte = 0x20;
constexpr uint8_t kStringByte = 0x30;
constexpr uint8_t kDocumentByte = 0x38;
constexpr uint8_t kArrayByte = 0x40;
constexpr uint8_t kObjectIdByte = 0x50;
constexpr uint8_t kBoolByte = 0x58;
constexpr uint8_t kDateTimeByte = 0x60;
constexpr uint8_t kMaxKeyByte = 0xFF;

void AppendBigEndian64(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

// Maps a double onto uint64 such that unsigned comparison of the images
// equals numeric comparison of the sources (IEEE-754 total order trick).
uint64_t OrderedDoubleBits(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & 0x8000000000000000ULL) {
    return ~bits;
  }
  return bits | 0x8000000000000000ULL;
}

uint64_t OrderedInt64Bits(int64_t v) {
  return static_cast<uint64_t>(v) ^ 0x8000000000000000ULL;
}

}  // namespace

Builder& Builder::AppendValue(const bson::Value& v) {
  using bson::Type;
  switch (v.type()) {
    case Type::kNull:
      buf_.push_back(static_cast<char>(kNullByte));
      break;
    case Type::kInt32:
    case Type::kInt64:
    case Type::kDouble: {
      // All numbers share a discriminator so cross-width comparison works.
      // The doubles stored by this system (coordinates, Hilbert values,
      // epoch millis) are all exactly representable.
      buf_.push_back(static_cast<char>(kNumberByte));
      AppendBigEndian64(OrderedDoubleBits(v.NumberAsDouble()), &buf_);
      break;
    }
    case Type::kString: {
      const std::string& s = v.AsString();
      assert(s.find('\0') == std::string::npos &&
             "embedded NUL not supported in KeyString");
      buf_.push_back(static_cast<char>(kStringByte));
      buf_ += s;
      buf_.push_back('\0');
      break;
    }
    case Type::kDateTime:
      buf_.push_back(static_cast<char>(kDateTimeByte));
      AppendBigEndian64(OrderedInt64Bits(v.AsDateTime()), &buf_);
      break;
    case Type::kObjectId: {
      buf_.push_back(static_cast<char>(kObjectIdByte));
      for (uint8_t b : v.AsObjectId().bytes()) {
        buf_.push_back(static_cast<char>(b));
      }
      break;
    }
    case Type::kBool:
      buf_.push_back(static_cast<char>(kBoolByte));
      buf_.push_back(v.AsBool() ? 1 : 0);
      break;
    case Type::kArray: {
      buf_.push_back(static_cast<char>(kArrayByte));
      for (const bson::Value& item : v.AsArray()) {
        buf_.push_back(1);  // element-follows marker beats end marker (0)
        AppendValue(item);
      }
      buf_.push_back(0);
      break;
    }
    case Type::kDocument: {
      buf_.push_back(static_cast<char>(kDocumentByte));
      for (const auto& [name, value] : v.AsDocument()) {
        buf_.push_back(1);
        buf_ += name;
        buf_.push_back('\0');
        AppendValue(value);
      }
      buf_.push_back(0);
      break;
    }
  }
  return *this;
}

Builder& Builder::AppendMinKey() {
  buf_.push_back(static_cast<char>(kMinKeyByte));
  return *this;
}

Builder& Builder::AppendMaxKey() {
  buf_.push_back(static_cast<char>(kMaxKeyByte));
  return *this;
}

Builder& Builder::AppendDocumentValues(const bson::Document& doc) {
  for (const auto& [name, value] : doc) {
    AppendValue(value);
  }
  return *this;
}

std::string Encode(const std::vector<bson::Value>& values) {
  Builder b;
  for (const bson::Value& v : values) b.AppendValue(v);
  return std::move(b).Build();
}

std::string Encode(const bson::Value& value) {
  Builder b;
  b.AppendValue(value);
  return std::move(b).Build();
}

std::string MinKey() { return std::string(1, static_cast<char>(kMinKeyByte)); }

std::string MaxKey() { return std::string(1, static_cast<char>(kMaxKeyByte)); }

namespace {

uint64_t ReadBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

double DoubleFromOrderedBits(uint64_t bits) {
  if (bits & 0x8000000000000000ULL) {
    bits &= 0x7FFFFFFFFFFFFFFFULL;
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

bool DecodeValues(std::string_view keystring,
                  std::vector<bson::Value>* values_out) {
  values_out->clear();
  const char* p = keystring.data();
  const char* end = p + keystring.size();
  while (p < end) {
    const uint8_t tag = static_cast<uint8_t>(*p++);
    switch (tag) {
      case kNullByte:
        values_out->push_back(bson::Value::Null());
        break;
      case kNumberByte: {
        if (end - p < 8) return false;
        values_out->push_back(
            bson::Value::Double(DoubleFromOrderedBits(ReadBigEndian64(p))));
        p += 8;
        break;
      }
      case kStringByte: {
        const void* nul = memchr(p, '\0', end - p);
        if (nul == nullptr) return false;
        const char* nul_p = static_cast<const char*>(nul);
        values_out->push_back(
            bson::Value::String(std::string(p, nul_p - p)));
        p = nul_p + 1;
        break;
      }
      case kDateTimeByte: {
        if (end - p < 8) return false;
        const uint64_t bits = ReadBigEndian64(p);
        values_out->push_back(bson::Value::DateTime(
            static_cast<int64_t>(bits ^ 0x8000000000000000ULL)));
        p += 8;
        break;
      }
      case kObjectIdByte: {
        if (end - p < static_cast<ptrdiff_t>(bson::ObjectId::kSize)) {
          return false;
        }
        std::array<uint8_t, bson::ObjectId::kSize> bytes;
        std::memcpy(bytes.data(), p, bson::ObjectId::kSize);
        values_out->push_back(bson::Value::Id(bson::ObjectId(bytes)));
        p += bson::ObjectId::kSize;
        break;
      }
      case kBoolByte: {
        if (p >= end) return false;
        values_out->push_back(bson::Value::Bool(*p++ != 0));
        break;
      }
      default:
        return false;  // nested / min / max not decodable
    }
  }
  return true;
}

}  // namespace stix::keystring
