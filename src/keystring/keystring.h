#ifndef STIX_KEYSTRING_KEYSTRING_H_
#define STIX_KEYSTRING_KEYSTRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bson/document.h"

namespace stix::keystring {

/// Order-preserving binary encoding of a sequence of BSON values (the
/// MongoDB "KeyString" idea): memcmp() over encodings sorts exactly like
/// element-wise bson::Compare over the source values. B-tree index keys,
/// chunk boundaries and zone ranges are all KeyStrings, so one comparator
/// serves the whole system.
///
/// Layout per value: a discriminator byte whose numeric order equals the
/// BSON canonical type order, followed by a type-specific payload that is
/// itself order-preserving:
///  - numbers (int32/int64/double) share one discriminator and are encoded
///    through the totally-ordered double transform (sign-flip trick);
///  - strings are raw bytes + 0x00 terminator (no embedded NULs);
///  - datetimes are int64 with the sign bit flipped, big-endian;
///  - ObjectIds are their 12 bytes verbatim;
///  - documents/arrays recurse with per-element markers.
class Builder {
 public:
  Builder& AppendValue(const bson::Value& v);
  Builder& AppendMinKey();  ///< Sorts before every BSON value.
  Builder& AppendMaxKey();  ///< Sorts after every BSON value.

  /// Encodes each field value of `doc` in order (names are not encoded; the
  /// index/shard-key descriptor fixes the field order).
  Builder& AppendDocumentValues(const bson::Document& doc);

  std::string Build() && { return std::move(buf_); }
  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Convenience: encode a list of values.
std::string Encode(const std::vector<bson::Value>& values);

/// Convenience: encode one value.
std::string Encode(const bson::Value& value);

/// The encoding of a key consisting of a single MinKey / MaxKey, usable as
/// -inf / +inf chunk boundaries for any shard key arity (memcmp order makes
/// a single 0x00 byte sort below any longer key, and 0xFF above).
std::string MinKey();
std::string MaxKey();

/// Decodes a KeyString produced by Builder back into scalar values (numbers
/// come back as kDouble — the encoding is numeric-width-erasing, like
/// MongoDB's). Supports the scalar types indexes store: null, number,
/// string, datetime, ObjectId, bool. Returns false on nested or malformed
/// encodings. Used by the index scan's bounds checker.
bool DecodeValues(std::string_view keystring,
                  std::vector<bson::Value>* values_out);

}  // namespace stix::keystring

#endif  // STIX_KEYSTRING_KEYSTRING_H_
