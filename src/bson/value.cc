#include "bson/value.h"

#include <cassert>

#include "bson/document.h"

namespace stix::bson {

int CanonicalTypeRank(Type t) {
  // MongoDB's BSON comparison order: MinKey < Null < Numbers < String <
  // Object < Array < BinData < ObjectId < Boolean < Date < Timestamp < Regex.
  switch (t) {
    case Type::kNull:
      return 0;
    case Type::kDouble:
    case Type::kInt32:
    case Type::kInt64:
      return 1;
    case Type::kString:
      return 2;
    case Type::kDocument:
      return 3;
    case Type::kArray:
      return 4;
    case Type::kObjectId:
      return 5;
    case Type::kBool:
      return 6;
    case Type::kDateTime:
      return 7;
  }
  return 8;
}

Value Value::MakeArray(Array items) {
  return Value(Rep(std::make_shared<Array>(std::move(items))));
}

Value Value::MakeDocument(Document doc) {
  return Value(Rep(std::make_shared<Document>(std::move(doc))));
}

Type Value::type() const {
  struct Visitor {
    Type operator()(std::monostate) const { return Type::kNull; }
    Type operator()(bool) const { return Type::kBool; }
    Type operator()(int32_t) const { return Type::kInt32; }
    Type operator()(int64_t) const { return Type::kInt64; }
    Type operator()(double) const { return Type::kDouble; }
    Type operator()(const std::string&) const { return Type::kString; }
    Type operator()(const DateTimeRep&) const { return Type::kDateTime; }
    Type operator()(const ObjectId&) const { return Type::kObjectId; }
    Type operator()(const std::shared_ptr<Array>&) const {
      return Type::kArray;
    }
    Type operator()(const std::shared_ptr<Document>&) const {
      return Type::kDocument;
    }
  };
  return std::visit(Visitor{}, rep_);
}

bool Value::IsNumber() const {
  const Type t = type();
  return t == Type::kInt32 || t == Type::kInt64 || t == Type::kDouble;
}

const Array& Value::AsArray() const {
  return *std::get<std::shared_ptr<Array>>(rep_);
}

const Document& Value::AsDocument() const {
  return *std::get<std::shared_ptr<Document>>(rep_);
}

double Value::NumberAsDouble() const {
  switch (type()) {
    case Type::kInt32:
      return AsInt32();
    case Type::kInt64:
      return static_cast<double>(AsInt64());
    case Type::kDouble:
      return AsDouble();
    default:
      assert(false && "NumberAsDouble on non-numeric value");
      return 0.0;
  }
}

size_t Value::ApproxBsonSize() const {
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return 1;
    case Type::kInt32:
      return 4;
    case Type::kInt64:
    case Type::kDouble:
    case Type::kDateTime:
      return 8;
    case Type::kString:
      return 4 + AsString().size() + 1;  // int32 length + bytes + NUL
    case Type::kObjectId:
      return ObjectId::kSize;
    case Type::kArray: {
      // BSON arrays are documents keyed "0", "1", ...
      size_t total = 4 + 1;
      size_t index = 0;
      for (const Value& v : AsArray()) {
        const size_t digits = index < 10 ? 1 : (index < 100 ? 2 : 3);
        total += 1 + digits + 1 + v.ApproxBsonSize();
        ++index;
      }
      return total;
    }
    case Type::kDocument:
      return AsDocument().ApproxBsonSize();
  }
  return 0;
}

namespace {

int Cmp(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Cmp(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

int Compare(const Value& a, const Value& b) {
  const Type ta = a.type();
  const Type tb = b.type();
  const int ra = CanonicalTypeRank(ta);
  const int rb = CanonicalTypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;

  switch (ta) {
    case Type::kNull:
      return 0;
    case Type::kInt32:
    case Type::kInt64:
    case Type::kDouble: {
      // Cross-width numeric comparison. Exact for the magnitudes stored here.
      if (ta != Type::kDouble && tb != Type::kDouble) {
        const int64_t va = ta == Type::kInt32 ? a.AsInt32() : a.AsInt64();
        const int64_t vb = tb == Type::kInt32 ? b.AsInt32() : b.AsInt64();
        return Cmp(va, vb);
      }
      return Cmp(a.NumberAsDouble(), b.NumberAsDouble());
    }
    case Type::kString:
      return a.AsString().compare(b.AsString()) < 0
                 ? -1
                 : (a.AsString() == b.AsString() ? 0 : 1);
    case Type::kBool:
      return Cmp(static_cast<int64_t>(a.AsBool()),
                 static_cast<int64_t>(b.AsBool()));
    case Type::kDateTime:
      return Cmp(a.AsDateTime(), b.AsDateTime());
    case Type::kObjectId: {
      const auto& ba = a.AsObjectId().bytes();
      const auto& bb = b.AsObjectId().bytes();
      for (size_t i = 0; i < ObjectId::kSize; ++i) {
        if (ba[i] != bb[i]) return ba[i] < bb[i] ? -1 : 1;
      }
      return 0;
    }
    case Type::kArray: {
      const Array& aa = a.AsArray();
      const Array& ab = b.AsArray();
      const size_t n = std::min(aa.size(), ab.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = Compare(aa[i], ab[i]);
        if (c != 0) return c;
      }
      return Cmp(static_cast<int64_t>(aa.size()),
                 static_cast<int64_t>(ab.size()));
    }
    case Type::kDocument:
      return Compare(a.AsDocument(), b.AsDocument());
  }
  return 0;
}

}  // namespace stix::bson
