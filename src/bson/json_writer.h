#ifndef STIX_BSON_JSON_WRITER_H_
#define STIX_BSON_JSON_WRITER_H_

#include <string>

#include "bson/document.h"

namespace stix::bson {

/// Renders a document in MongoDB extended-JSON-flavoured text, for examples
/// and debugging: dates as ISODate("..."), ObjectIds as ObjectId("...").
std::string ToJson(const Document& doc);
std::string ToJson(const Value& value);

}  // namespace stix::bson

#endif  // STIX_BSON_JSON_WRITER_H_
