#include "bson/simple8b.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace stix::bson {
namespace {

// Packed-value width per selector; selectors 0/1 are the 240/120-zero run
// selectors and carry no payload bits.
constexpr int kBitsPerSelector[16] = {0, 0,  1,  2,  3,  4,  5,  6,
                                      7, 8, 10, 12, 15, 20, 30, 60};
constexpr int kCountPerSelector[16] = {240, 120, 60, 30, 20, 15, 12, 10,
                                       8,   7,   6,  5,  4,  3,  2,  1};

void PutWord(uint64_t word, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((word >> (8 * i)) & 0xff));
  }
}

bool GetWord(std::string_view* in, uint64_t* word) {
  if (in->size() < 8) return false;
  uint64_t w = 0;
  for (int i = 0; i < 8; ++i) {
    w |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  }
  in->remove_prefix(8);
  *word = w;
  return true;
}

}  // namespace

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(std::string_view* in) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (in->empty()) return Status::Corruption("truncated varint");
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::Corruption("varint too long");
}

bool Simple8bEncode(const std::vector<uint64_t>& values, std::string* out) {
  for (const uint64_t v : values) {
    if (v > kSimple8bMaxValue) return false;
  }
  std::string encoded;
  PutVarint(values.size(), &encoded);
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    // Zero runs first: one word for 240 (or 120) consecutive zeros.
    size_t run = 0;
    while (i + run < n && run < 240 && values[i + run] == 0) ++run;
    if (run >= 240) {
      PutWord(0, &encoded);  // selector 0
      i += 240;
      continue;
    }
    if (run >= 120) {
      PutWord(uint64_t{1} << 60, &encoded);  // selector 1
      i += 120;
      continue;
    }
    // Densest bit-packed selector whose next N values all fit. The widest
    // selector (1 x 60 bits) always fits, so the loop cannot fall through.
    for (int sel = 2; sel < 16; ++sel) {
      const int bits = kBitsPerSelector[sel];
      const size_t slots = static_cast<size_t>(kCountPerSelector[sel]);
      const size_t take = std::min(slots, n - i);
      bool fits = true;
      for (size_t j = 0; j < take; ++j) {
        if (bits < 64 && (values[i + j] >> bits) != 0) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      // A short tail pads the word with zero slots; the decoder stops at
      // the stream's value count, so padding is unambiguous.
      uint64_t word = static_cast<uint64_t>(sel) << 60;
      for (size_t j = 0; j < take; ++j) {
        word |= values[i + j] << (bits * static_cast<int>(j));
      }
      PutWord(word, &encoded);
      i += take;
      break;
    }
  }
  out->append(encoded);
  return true;
}

Result<std::vector<uint64_t>> Simple8bDecode(std::string_view* in) {
  Result<uint64_t> n = GetVarint(in);
  if (!n.ok()) return n.status();
  std::vector<uint64_t> values;
  values.reserve(static_cast<size_t>(*n));
  while (values.size() < *n) {
    uint64_t word = 0;
    if (!GetWord(in, &word)) {
      return Status::Corruption("truncated simple8b stream");
    }
    const int sel = static_cast<int>(word >> 60);
    if (sel <= 1) {
      const size_t run = static_cast<size_t>(kCountPerSelector[sel]);
      for (size_t j = 0; j < run && values.size() < *n; ++j) {
        values.push_back(0);
      }
      continue;
    }
    const int bits = kBitsPerSelector[sel];
    const uint64_t mask = bits >= 64 ? ~uint64_t{0}
                                     : (uint64_t{1} << bits) - 1;
    const size_t slots = static_cast<size_t>(kCountPerSelector[sel]);
    for (size_t j = 0; j < slots && values.size() < *n; ++j) {
      values.push_back((word >> (bits * static_cast<int>(j))) & mask);
    }
  }
  return values;
}

namespace {

constexpr uint8_t kInt64ModeDeltaOfDelta = 0;
constexpr uint8_t kInt64ModeRaw = 1;

constexpr uint8_t kDoubleModeScaled = 0;
constexpr uint8_t kDoubleModeBits = 1;

// zigzag(delta-of-delta) transform. Differences are taken in unsigned
// arithmetic (well-defined wraparound); a wrapped difference zigzags to a
// huge value, which the 60-bit ceiling then routes to the raw fallback —
// correctness never depends on the deltas being small, only compression.
std::vector<uint64_t> DeltaOfDeltaTransform(const std::vector<int64_t>& v) {
  std::vector<uint64_t> out;
  out.reserve(v.size());
  uint64_t prev = 0;
  uint64_t prev_delta = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const uint64_t cur = static_cast<uint64_t>(v[i]);
    const uint64_t delta = cur - prev;
    out.push_back(ZigZagEncode(static_cast<int64_t>(delta - prev_delta)));
    prev = cur;
    prev_delta = delta;
  }
  return out;
}

}  // namespace

void EncodeInt64Column(const std::vector<int64_t>& values, std::string* out) {
  std::string packed;
  if (Simple8bEncode(DeltaOfDeltaTransform(values), &packed)) {
    out->push_back(static_cast<char>(kInt64ModeDeltaOfDelta));
    out->append(packed);
    return;
  }
  out->push_back(static_cast<char>(kInt64ModeRaw));
  PutVarint(values.size(), out);
  for (const int64_t v : values) {
    const uint64_t u = static_cast<uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
    }
  }
}

Result<std::vector<int64_t>> DecodeInt64Column(std::string_view* in) {
  if (in->empty()) return Status::Corruption("empty int64 column");
  const uint8_t mode = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  if (mode == kInt64ModeDeltaOfDelta) {
    Result<std::vector<uint64_t>> packed = Simple8bDecode(in);
    if (!packed.ok()) return packed.status();
    std::vector<int64_t> values;
    values.reserve(packed->size());
    uint64_t prev = 0;
    uint64_t prev_delta = 0;
    for (const uint64_t z : *packed) {
      const uint64_t delta =
          prev_delta + static_cast<uint64_t>(ZigZagDecode(z));
      prev += delta;
      prev_delta = delta;
      values.push_back(static_cast<int64_t>(prev));
    }
    return values;
  }
  if (mode == kInt64ModeRaw) {
    Result<uint64_t> n = GetVarint(in);
    if (!n.ok()) return n.status();
    if (in->size() < *n * 8) {
      return Status::Corruption("truncated raw int64 column");
    }
    std::vector<int64_t> values;
    values.reserve(static_cast<size_t>(*n));
    for (uint64_t i = 0; i < *n; ++i) {
      uint64_t u = 0;
      for (int b = 0; b < 8; ++b) {
        u |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[b])) << (8 * b);
      }
      in->remove_prefix(8);
      values.push_back(static_cast<int64_t>(u));
    }
    return values;
  }
  return Status::Corruption("unknown int64 column mode " +
                            std::to_string(mode));
}

namespace {

// Tries value*10^p as an integer for the smallest p that round-trips every
// value bit-exactly — coordinates and telemetry printed with fixed decimals
// land here, and their scaled deltas are tiny.
bool TryDecimalScale(const std::vector<double>& values, uint8_t* pow_out,
                     std::vector<int64_t>* scaled_out) {
  double scale = 1.0;
  for (uint8_t p = 0; p <= 8; ++p, scale *= 10.0) {
    bool ok = true;
    scaled_out->clear();
    scaled_out->reserve(values.size());
    for (const double d : values) {
      if (!std::isfinite(d) || std::abs(d) * scale >= 9.0e15) {
        ok = false;
        break;
      }
      const int64_t v = std::llround(d * scale);
      const double back = static_cast<double>(v) / scale;
      if (std::memcmp(&back, &d, sizeof(double)) != 0) {
        ok = false;
        break;
      }
      scaled_out->push_back(v);
    }
    if (ok) {
      *pow_out = p;
      return true;
    }
    // A non-finite value can never scale; stop probing larger powers.
    for (const double d : values) {
      if (!std::isfinite(d)) return false;
    }
  }
  return false;
}

}  // namespace

void EncodeDoubleColumn(const std::vector<double>& values, std::string* out) {
  uint8_t pow = 0;
  std::vector<int64_t> reduced;
  if (TryDecimalScale(values, &pow, &reduced)) {
    out->push_back(static_cast<char>(kDoubleModeScaled));
    out->push_back(static_cast<char>(pow));
    EncodeInt64Column(reduced, out);
    return;
  }
  reduced.clear();
  reduced.reserve(values.size());
  for (const double d : values) {
    int64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(double));
    reduced.push_back(bits);
  }
  out->push_back(static_cast<char>(kDoubleModeBits));
  EncodeInt64Column(reduced, out);
}

Result<std::vector<double>> DecodeDoubleColumn(std::string_view* in) {
  if (in->empty()) return Status::Corruption("empty double column");
  const uint8_t mode = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  if (mode == kDoubleModeScaled) {
    if (in->empty()) return Status::Corruption("truncated double column");
    const uint8_t pow = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    double scale = 1.0;
    for (uint8_t p = 0; p < pow; ++p) scale *= 10.0;
    Result<std::vector<int64_t>> ints = DecodeInt64Column(in);
    if (!ints.ok()) return ints.status();
    std::vector<double> values;
    values.reserve(ints->size());
    for (const int64_t v : *ints) {
      values.push_back(static_cast<double>(v) / scale);
    }
    return values;
  }
  if (mode == kDoubleModeBits) {
    Result<std::vector<int64_t>> ints = DecodeInt64Column(in);
    if (!ints.ok()) return ints.status();
    std::vector<double> values;
    values.reserve(ints->size());
    for (const int64_t v : *ints) {
      double d = 0.0;
      std::memcpy(&d, &v, sizeof(double));
      values.push_back(d);
    }
    return values;
  }
  return Status::Corruption("unknown double column mode " +
                            std::to_string(mode));
}

}  // namespace stix::bson
