#ifndef STIX_BSON_VALUE_H_
#define STIX_BSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bson/object_id.h"

namespace stix::bson {

class Document;
class Value;

/// BSON value types supported by this store (the subset MongoDB's
/// spatio-temporal workloads use).
enum class Type : uint8_t {
  kNull = 0,
  kDouble,
  kInt32,
  kInt64,
  kString,
  kDocument,
  kArray,
  kObjectId,
  kBool,
  kDateTime,  // Milliseconds since the Unix epoch, as MongoDB's ISODate.
};

/// Canonical sort rank of a type, mirroring MongoDB's cross-type BSON
/// comparison order (numbers compare together regardless of width).
int CanonicalTypeRank(Type t);

using Array = std::vector<Value>;

/// A dynamically typed BSON value. Documents and arrays are heap-allocated
/// behind shared_ptr so Values stay cheap to copy when passed through query
/// plan stages.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int32(int32_t v) { return Value(Rep(v)); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value DateTime(int64_t millis_since_epoch) {
    return Value(Rep(DateTimeRep{millis_since_epoch}));
  }
  static Value Id(ObjectId oid) { return Value(Rep(oid)); }
  static Value MakeArray(Array items);
  static Value MakeDocument(Document doc);

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool IsNumber() const;

  bool AsBool() const { return std::get<bool>(rep_); }
  int32_t AsInt32() const { return std::get<int32_t>(rep_); }
  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  int64_t AsDateTime() const { return std::get<DateTimeRep>(rep_).millis; }
  const ObjectId& AsObjectId() const { return std::get<ObjectId>(rep_); }
  const Array& AsArray() const;
  const Document& AsDocument() const;

  /// Numeric value widened to double (valid for kInt32/kInt64/kDouble).
  double NumberAsDouble() const;

  /// Size this value would occupy inside a serialized BSON document,
  /// excluding the element header (type byte + field name).
  size_t ApproxBsonSize() const;

  /// Total ordering following MongoDB semantics: canonical type rank first,
  /// numeric types compare by value across widths, strings lexicographically,
  /// documents/arrays element-wise.
  friend int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

 private:
  struct DateTimeRep {
    int64_t millis;
  };
  using Rep = std::variant<std::monostate, bool, int32_t, int64_t, double,
                           std::string, DateTimeRep, ObjectId,
                           std::shared_ptr<Array>, std::shared_ptr<Document>>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace stix::bson

#endif  // STIX_BSON_VALUE_H_
