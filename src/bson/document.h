#ifndef STIX_BSON_DOCUMENT_H_
#define STIX_BSON_DOCUMENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bson/value.h"

namespace stix::bson {

/// An ordered set of (field name, Value) pairs — the unit of storage, exactly
/// as in a document store. Field order is preserved; lookup is linear, which
/// wins for the small documents these workloads store.
class Document {
 public:
  Document() = default;

  /// Appends a field. Does not check for duplicates (callers own uniqueness,
  /// as in MongoDB drivers).
  void Append(std::string name, Value value) {
    fields_.emplace_back(std::move(name), std::move(value));
  }

  /// Pre-sizes the field vector for builders that know the field count
  /// (e.g. bucket decoding, which materializes millions of documents).
  void Reserve(size_t num_fields) { fields_.reserve(num_fields); }

  /// Returns the value of a top-level field, or nullptr if absent.
  const Value* Get(std::string_view name) const;

  /// Returns the value at a dotted path ("location.coordinates"), descending
  /// through nested documents; array elements are addressed by decimal index
  /// ("coordinates.0"). Returns nullptr if any step is missing.
  const Value* GetPath(std::string_view dotted_path) const;

  /// Replaces the first field with this name, or appends if absent.
  void Set(std::string_view name, Value value);

  bool Has(std::string_view name) const { return Get(name) != nullptr; }

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const std::pair<std::string, Value>& field(size_t i) const {
    return fields_[i];
  }

  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

  /// Size of this document if serialized as BSON (length header + elements +
  /// terminator). Drives chunk sizing and Table 6's storage accounting.
  size_t ApproxBsonSize() const;

  /// Element-wise comparison in field order (name, then value), matching
  /// MongoDB's document comparison.
  friend int Compare(const Document& a, const Document& b);

 private:
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Fluent builder for literals in tests/examples:
///   auto doc = DocBuilder().Field("x", 1).Field("s", "hi").Build();
class DocBuilder {
 public:
  DocBuilder&& Field(std::string name, Value v) && {
    doc_.Append(std::move(name), std::move(v));
    return std::move(*this);
  }
  DocBuilder&& Field(std::string name, int32_t v) && {
    return std::move(*this).Field(std::move(name), Value::Int32(v));
  }
  DocBuilder&& Field(std::string name, int64_t v) && {
    return std::move(*this).Field(std::move(name), Value::Int64(v));
  }
  DocBuilder&& Field(std::string name, double v) && {
    return std::move(*this).Field(std::move(name), Value::Double(v));
  }
  DocBuilder&& Field(std::string name, const char* v) && {
    return std::move(*this).Field(std::move(name), Value::String(v));
  }
  DocBuilder&& Field(std::string name, std::string v) && {
    return std::move(*this).Field(std::move(name), Value::String(std::move(v)));
  }
  DocBuilder&& Field(std::string name, bool v) && {
    return std::move(*this).Field(std::move(name), Value::Bool(v));
  }
  DocBuilder&& Field(std::string name, Document v) && {
    return std::move(*this).Field(std::move(name),
                                  Value::MakeDocument(std::move(v)));
  }

  Document Build() && { return std::move(doc_); }

 private:
  Document doc_;
};

/// Builds the GeoJSON Point sub-document MongoDB stores for 2dsphere fields:
/// { "type": "Point", "coordinates": [lon, lat] }.
Document GeoJsonPoint(double lon, double lat);

/// Extracts (lon, lat) from a GeoJSON Point sub-document; returns false if
/// the value does not have that shape.
bool ExtractGeoJsonPoint(const Value& v, double* lon, double* lat);

/// Builds a GeoJSON LineString sub-document:
/// { "type": "LineString", "coordinates": [[lon, lat], ...] }.
/// `lonlat_pairs` is a flat array [lon0, lat0, lon1, lat1, ...].
Document GeoJsonLineString(const std::vector<std::pair<double, double>>& pts);

/// Extracts the vertex list of a GeoJSON LineString (>= 2 vertices);
/// returns false if the value does not have that shape.
bool ExtractGeoJsonLineString(
    const Value& v, std::vector<std::pair<double, double>>* points);

}  // namespace stix::bson

#endif  // STIX_BSON_DOCUMENT_H_
