#include "bson/object_id.h"

#include <cstdio>

namespace stix::bson {

uint32_t ObjectId::timestamp_seconds() const {
  return (static_cast<uint32_t>(bytes_[0]) << 24) |
         (static_cast<uint32_t>(bytes_[1]) << 16) |
         (static_cast<uint32_t>(bytes_[2]) << 8) |
         static_cast<uint32_t>(bytes_[3]);
}

std::string ObjectId::ToHex() const {
  std::string out;
  out.reserve(kSize * 2);
  char buf[3];
  for (uint8_t b : bytes_) {
    snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

ObjectIdGenerator::ObjectIdGenerator(uint64_t seed) {
  Rng rng(seed);
  const uint64_t r = rng.Next();
  for (int i = 0; i < 5; ++i) {
    process_random_[i] = static_cast<uint8_t>(r >> (8 * i));
  }
  counter_ = static_cast<uint32_t>(rng.Next()) & 0x00ffffffu;
}

ObjectId ObjectIdGenerator::Generate(uint32_t timestamp_seconds) {
  std::array<uint8_t, ObjectId::kSize> b;
  b[0] = static_cast<uint8_t>(timestamp_seconds >> 24);
  b[1] = static_cast<uint8_t>(timestamp_seconds >> 16);
  b[2] = static_cast<uint8_t>(timestamp_seconds >> 8);
  b[3] = static_cast<uint8_t>(timestamp_seconds);
  for (int i = 0; i < 5; ++i) b[4 + i] = process_random_[i];
  counter_ = (counter_ + 1) & 0x00ffffffu;
  b[9] = static_cast<uint8_t>(counter_ >> 16);
  b[10] = static_cast<uint8_t>(counter_ >> 8);
  b[11] = static_cast<uint8_t>(counter_);
  return ObjectId(b);
}

}  // namespace stix::bson
