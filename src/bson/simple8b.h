#ifndef STIX_BSON_SIMPLE8B_H_
#define STIX_BSON_SIMPLE8B_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stix::bson {

/// Simple8b word packing (Anh & Moffat, as used by MongoDB's time-series
/// buckets and InfluxDB): each 64-bit little-endian word carries a 4-bit
/// selector plus a 60-bit payload of N equal-width values. Selectors 0 and 1
/// are run selectors (240 / 120 zeros in one word) — the common case for
/// delta-of-delta streams sampled at a near-constant rate.
///
/// The column codecs below layer the classic time-series transform on top:
/// zigzag(delta-of-delta) for int64 columns, with a decimal-scaled or
/// IEEE-754-bit-pattern reduction for double columns. Every column carries a
/// mode byte, so a stream whose deltas overflow the 60-bit ceiling falls
/// back to raw fixed-width storage instead of failing — encoding is total,
/// decoding is exact (bit-identical round trip, -0.0 and NaN included).

/// Largest value a Simple8b payload slot can carry (60 set bits).
constexpr uint64_t kSimple8bMaxValue = (uint64_t{1} << 60) - 1;

/// Order-preserving signed→unsigned folding: 0,-1,1,-2,2.. → 0,1,2,3,4..
uint64_t ZigZagEncode(int64_t v);
int64_t ZigZagDecode(uint64_t v);

/// LEB128 varint, used to frame counts and blob lengths inside columns.
void PutVarint(uint64_t v, std::string* out);
Result<uint64_t> GetVarint(std::string_view* in);

/// Appends varint(count) + packed words to *out. Returns false (and leaves
/// *out untouched) iff some value exceeds kSimple8bMaxValue.
bool Simple8bEncode(const std::vector<uint64_t>& values, std::string* out);

/// Consumes one Simple8bEncode stream from the front of *in.
Result<std::vector<uint64_t>> Simple8bDecode(std::string_view* in);

/// Int64 column: mode byte + varint(count) + payload. Mode is
/// delta-of-delta (zigzag + Simple8b) when every transformed value fits in
/// 60 bits, raw little-endian 8-byte values otherwise.
void EncodeInt64Column(const std::vector<int64_t>& values, std::string* out);
Result<std::vector<int64_t>> DecodeInt64Column(std::string_view* in);

/// Double column: tries a decimal scaling (value * 10^p as an integer,
/// verified to round-trip bit-exactly) before falling back to the raw
/// IEEE-754 bit pattern; either reduction is then stored as an int64
/// column. Lossless for every input including -0.0 and NaN.
void EncodeDoubleColumn(const std::vector<double>& values, std::string* out);
Result<std::vector<double>> DecodeDoubleColumn(std::string_view* in);

}  // namespace stix::bson

#endif  // STIX_BSON_SIMPLE8B_H_
