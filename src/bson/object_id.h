#ifndef STIX_BSON_OBJECT_ID_H_
#define STIX_BSON_OBJECT_ID_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace stix::bson {

/// MongoDB-compatible 12-byte ObjectId: 4-byte big-endian seconds timestamp,
/// 5-byte per-process random value, 3-byte big-endian incrementing counter
/// initialised to a random value. The timestamp prefix is what makes _id
/// B-trees prefix-compress well when documents are inserted in time order
/// (the effect measured in the paper's Fig. 14).
class ObjectId {
 public:
  static constexpr size_t kSize = 12;

  ObjectId() { bytes_.fill(0); }
  explicit ObjectId(const std::array<uint8_t, kSize>& bytes) : bytes_(bytes) {}

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }

  /// Seconds-since-epoch encoded in the first four bytes.
  uint32_t timestamp_seconds() const;

  /// 24-char lowercase hex rendering (MongoDB shell style).
  std::string ToHex() const;

  friend std::strong_ordering operator<=>(const ObjectId& a,
                                          const ObjectId& b) = default;

 private:
  std::array<uint8_t, kSize> bytes_;
};

/// Deterministic ObjectId factory: the random middle section comes from the
/// supplied seed (one "process" per generator) and the caller provides the
/// timestamp, standing in for the client machine's wall clock at insert time.
class ObjectIdGenerator {
 public:
  explicit ObjectIdGenerator(uint64_t seed);

  ObjectId Generate(uint32_t timestamp_seconds);

 private:
  std::array<uint8_t, 5> process_random_;
  uint32_t counter_;  // Only the low 3 bytes are used, as in MongoDB.
};

}  // namespace stix::bson

#endif  // STIX_BSON_OBJECT_ID_H_
