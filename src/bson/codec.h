#ifndef STIX_BSON_CODEC_H_
#define STIX_BSON_CODEC_H_

#include <string>
#include <string_view>

#include "bson/document.h"
#include "common/status.h"

namespace stix::bson {

/// Serializes a document into real BSON wire format (little-endian length
/// prefix, type-tagged elements, NUL-terminated names). The storage engine
/// compresses these bytes in blocks to account for on-disk size the way
/// WiredTiger + snappy does (Table 6 of the paper).
std::string EncodeBson(const Document& doc);

/// Parses BSON bytes produced by EncodeBson (or any producer restricted to
/// the supported types). Fails with Corruption on malformed input.
Result<Document> DecodeBson(std::string_view bytes);

}  // namespace stix::bson

#endif  // STIX_BSON_CODEC_H_
