#include "bson/codec.h"

#include <cstring>

namespace stix::bson {
namespace {

// BSON element type tags (subset), as in the BSON spec.
constexpr uint8_t kTagDouble = 0x01;
constexpr uint8_t kTagString = 0x02;
constexpr uint8_t kTagDocument = 0x03;
constexpr uint8_t kTagArray = 0x04;
constexpr uint8_t kTagObjectId = 0x07;
constexpr uint8_t kTagBool = 0x08;
constexpr uint8_t kTagDateTime = 0x09;
constexpr uint8_t kTagNull = 0x0A;
constexpr uint8_t kTagInt32 = 0x10;
constexpr uint8_t kTagInt64 = 0x12;

void PutLE32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutLE64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void EncodeValue(const Value& v, std::string* out);

void EncodeElements(const Document& doc, std::string* out) {
  const size_t len_pos = out->size();
  PutLE32(0, out);  // placeholder
  for (const auto& [name, value] : doc) {
    uint8_t tag;
    switch (value.type()) {
      case Type::kDouble:
        tag = kTagDouble;
        break;
      case Type::kString:
        tag = kTagString;
        break;
      case Type::kDocument:
        tag = kTagDocument;
        break;
      case Type::kArray:
        tag = kTagArray;
        break;
      case Type::kObjectId:
        tag = kTagObjectId;
        break;
      case Type::kBool:
        tag = kTagBool;
        break;
      case Type::kDateTime:
        tag = kTagDateTime;
        break;
      case Type::kNull:
        tag = kTagNull;
        break;
      case Type::kInt32:
        tag = kTagInt32;
        break;
      case Type::kInt64:
        tag = kTagInt64;
        break;
      default:
        tag = kTagNull;
    }
    out->push_back(static_cast<char>(tag));
    *out += name;
    out->push_back('\0');
    EncodeValue(value, out);
  }
  out->push_back('\0');
  const uint32_t total = static_cast<uint32_t>(out->size() - len_pos);
  for (int i = 0; i < 4; ++i) {
    (*out)[len_pos + i] = static_cast<char>(total >> (8 * i));
  }
}

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case Type::kInt32:
      PutLE32(static_cast<uint32_t>(v.AsInt32()), out);
      break;
    case Type::kInt64:
      PutLE64(static_cast<uint64_t>(v.AsInt64()), out);
      break;
    case Type::kDateTime:
      PutLE64(static_cast<uint64_t>(v.AsDateTime()), out);
      break;
    case Type::kDouble: {
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutLE64(bits, out);
      break;
    }
    case Type::kString: {
      const std::string& s = v.AsString();
      PutLE32(static_cast<uint32_t>(s.size() + 1), out);
      *out += s;
      out->push_back('\0');
      break;
    }
    case Type::kObjectId:
      for (uint8_t b : v.AsObjectId().bytes()) {
        out->push_back(static_cast<char>(b));
      }
      break;
    case Type::kDocument:
      EncodeElements(v.AsDocument(), out);
      break;
    case Type::kArray: {
      Document as_doc;
      size_t i = 0;
      for (const Value& item : v.AsArray()) {
        as_doc.Append(std::to_string(i++), item);
      }
      EncodeElements(as_doc, out);
      break;
    }
  }
}

// ---- decoding ----

struct Cursor {
  const char* p;
  const char* end;

  bool Need(size_t n) const { return static_cast<size_t>(end - p) >= n; }
};

bool GetLE32(Cursor* c, uint32_t* v) {
  if (!c->Need(4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(c->p[i])) << (8 * i);
  }
  c->p += 4;
  return true;
}

bool GetLE64(Cursor* c, uint64_t* v) {
  if (!c->Need(8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(c->p[i])) << (8 * i);
  }
  c->p += 8;
  return true;
}

bool GetCString(Cursor* c, std::string* s) {
  const void* nul = memchr(c->p, '\0', c->end - c->p);
  if (nul == nullptr) return false;
  const char* nul_p = static_cast<const char*>(nul);
  s->assign(c->p, nul_p - c->p);
  c->p = nul_p + 1;
  return true;
}

bool DecodeDocumentBody(Cursor* c, Document* doc, bool* as_array_ok);

bool DecodeValue(uint8_t tag, Cursor* c, Value* out) {
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagBool: {
      if (!c->Need(1)) return false;
      *out = Value::Bool(*c->p != 0);
      ++c->p;
      return true;
    }
    case kTagInt32: {
      uint32_t v;
      if (!GetLE32(c, &v)) return false;
      *out = Value::Int32(static_cast<int32_t>(v));
      return true;
    }
    case kTagInt64: {
      uint64_t v;
      if (!GetLE64(c, &v)) return false;
      *out = Value::Int64(static_cast<int64_t>(v));
      return true;
    }
    case kTagDateTime: {
      uint64_t v;
      if (!GetLE64(c, &v)) return false;
      *out = Value::DateTime(static_cast<int64_t>(v));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!GetLE64(c, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return true;
    }
    case kTagString: {
      uint32_t len;
      if (!GetLE32(c, &len) || len == 0 || !c->Need(len)) return false;
      *out = Value::String(std::string(c->p, len - 1));
      c->p += len;
      return true;
    }
    case kTagObjectId: {
      if (!c->Need(ObjectId::kSize)) return false;
      std::array<uint8_t, ObjectId::kSize> bytes;
      std::memcpy(bytes.data(), c->p, ObjectId::kSize);
      c->p += ObjectId::kSize;
      *out = Value::Id(ObjectId(bytes));
      return true;
    }
    case kTagDocument: {
      Document sub;
      bool unused;
      if (!DecodeDocumentBody(c, &sub, &unused)) return false;
      *out = Value::MakeDocument(std::move(sub));
      return true;
    }
    case kTagArray: {
      Document sub;
      bool unused;
      if (!DecodeDocumentBody(c, &sub, &unused)) return false;
      Array arr;
      arr.reserve(sub.size());
      for (const auto& [name, value] : sub) arr.push_back(value);
      *out = Value::MakeArray(std::move(arr));
      return true;
    }
    default:
      return false;
  }
}

bool DecodeDocumentBody(Cursor* c, Document* doc, bool* as_array_ok) {
  *as_array_ok = true;
  uint32_t total;
  const char* start = c->p;
  if (!GetLE32(c, &total) || total < 5) return false;
  const char* doc_end = start + total;
  if (doc_end > c->end) return false;
  while (c->p < doc_end - 1) {
    const uint8_t tag = static_cast<uint8_t>(*c->p++);
    std::string name;
    if (!GetCString(c, &name)) return false;
    Value value;
    if (!DecodeValue(tag, c, &value)) return false;
    doc->Append(std::move(name), std::move(value));
  }
  if (c->p != doc_end - 1 || *c->p != '\0') return false;
  ++c->p;
  return true;
}

}  // namespace

std::string EncodeBson(const Document& doc) {
  std::string out;
  out.reserve(doc.ApproxBsonSize());
  EncodeElements(doc, &out);
  return out;
}

Result<Document> DecodeBson(std::string_view bytes) {
  Cursor c{bytes.data(), bytes.data() + bytes.size()};
  Document doc;
  bool unused;
  if (!DecodeDocumentBody(&c, &doc, &unused) || c.p != c.end) {
    return Status::Corruption("malformed BSON document");
  }
  return doc;
}

}  // namespace stix::bson
