#include "bson/json_writer.h"

#include "common/strings.h"

namespace stix::bson {
namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void WriteValue(const Value& v, std::string* out);

void WriteDocument(const Document& doc, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : doc) {
    if (!first) *out += ", ";
    first = false;
    AppendEscaped(name, out);
    *out += ": ";
    WriteValue(value, out);
  }
  out->push_back('}');
}

void WriteValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case Type::kInt32:
      *out += std::to_string(v.AsInt32());
      break;
    case Type::kInt64:
      *out += std::to_string(v.AsInt64());
      break;
    case Type::kDouble:
      *out += stix::FormatDouble(v.AsDouble());
      break;
    case Type::kString:
      AppendEscaped(v.AsString(), out);
      break;
    case Type::kDateTime:
      *out += "ISODate(\"" + stix::FormatIsoDate(v.AsDateTime()) + "\")";
      break;
    case Type::kObjectId:
      *out += "ObjectId(\"" + v.AsObjectId().ToHex() + "\")";
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : v.AsArray()) {
        if (!first) *out += ", ";
        first = false;
        WriteValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case Type::kDocument:
      WriteDocument(v.AsDocument(), out);
      break;
  }
}

}  // namespace

std::string ToJson(const Document& doc) {
  std::string out;
  WriteDocument(doc, &out);
  return out;
}

std::string ToJson(const Value& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace stix::bson
