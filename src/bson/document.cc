#include "bson/document.h"

#include <cstdlib>

namespace stix::bson {

const Value* Document::Get(std::string_view name) const {
  for (const auto& [field_name, value] : fields_) {
    if (field_name == name) return &value;
  }
  return nullptr;
}

const Value* Document::GetPath(std::string_view dotted_path) const {
  const size_t dot = dotted_path.find('.');
  const std::string_view head = dotted_path.substr(0, dot);
  const Value* v = Get(head);
  if (v == nullptr || dot == std::string_view::npos) return v;

  const std::string_view rest = dotted_path.substr(dot + 1);
  if (v->type() == Type::kDocument) return v->AsDocument().GetPath(rest);
  if (v->type() == Type::kArray) {
    // Address array elements by decimal index.
    const size_t next_dot = rest.find('.');
    const std::string_view index_str = rest.substr(0, next_dot);
    char* end = nullptr;
    const std::string index_copy(index_str);
    const long index = strtol(index_copy.c_str(), &end, 10);
    if (end == index_copy.c_str() || *end != '\0' || index < 0) return nullptr;
    const Array& arr = v->AsArray();
    if (static_cast<size_t>(index) >= arr.size()) return nullptr;
    const Value* element = &arr[static_cast<size_t>(index)];
    if (next_dot == std::string_view::npos) return element;
    if (element->type() != Type::kDocument) return nullptr;
    return element->AsDocument().GetPath(rest.substr(next_dot + 1));
  }
  return nullptr;
}

void Document::Set(std::string_view name, Value value) {
  for (auto& [field_name, field_value] : fields_) {
    if (field_name == name) {
      field_value = std::move(value);
      return;
    }
  }
  Append(std::string(name), std::move(value));
}

size_t Document::ApproxBsonSize() const {
  size_t total = 4 + 1;  // int32 length prefix + trailing NUL
  for (const auto& [name, value] : fields_) {
    total += 1 + name.size() + 1 + value.ApproxBsonSize();
  }
  return total;
}

int Compare(const Document& a, const Document& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& [name_a, value_a] = a.field(i);
    const auto& [name_b, value_b] = b.field(i);
    const int name_cmp = name_a.compare(name_b);
    if (name_cmp != 0) return name_cmp < 0 ? -1 : 1;
    const int value_cmp = Compare(value_a, value_b);
    if (value_cmp != 0) return value_cmp;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

Document GeoJsonPoint(double lon, double lat) {
  Document point;
  point.Append("type", Value::String("Point"));
  point.Append("coordinates",
               Value::MakeArray({Value::Double(lon), Value::Double(lat)}));
  return point;
}

Document GeoJsonLineString(
    const std::vector<std::pair<double, double>>& pts) {
  Array coordinates;
  coordinates.reserve(pts.size());
  for (const auto& [lon, lat] : pts) {
    coordinates.push_back(Value::MakeArray(
        {Value::Double(lon), Value::Double(lat)}));
  }
  Document line;
  line.Append("type", Value::String("LineString"));
  line.Append("coordinates", Value::MakeArray(std::move(coordinates)));
  return line;
}

bool ExtractGeoJsonLineString(
    const Value& v, std::vector<std::pair<double, double>>* points) {
  if (v.type() != Type::kDocument) return false;
  const Document& doc = v.AsDocument();
  const Value* type = doc.Get("type");
  if (type == nullptr || type->type() != Type::kString ||
      type->AsString() != "LineString") {
    return false;
  }
  const Value* coords = doc.Get("coordinates");
  if (coords == nullptr || coords->type() != Type::kArray) return false;
  const Array& arr = coords->AsArray();
  if (arr.size() < 2) return false;
  points->clear();
  points->reserve(arr.size());
  for (const Value& vertex : arr) {
    if (vertex.type() != Type::kArray) return false;
    const Array& pair = vertex.AsArray();
    if (pair.size() != 2 || !pair[0].IsNumber() || !pair[1].IsNumber()) {
      return false;
    }
    points->emplace_back(pair[0].NumberAsDouble(), pair[1].NumberAsDouble());
  }
  return true;
}

bool ExtractGeoJsonPoint(const Value& v, double* lon, double* lat) {
  if (v.type() != Type::kDocument) return false;
  const Document& doc = v.AsDocument();
  const Value* type = doc.Get("type");
  if (type == nullptr || type->type() != Type::kString ||
      type->AsString() != "Point") {
    return false;
  }
  const Value* coords = doc.Get("coordinates");
  if (coords == nullptr || coords->type() != Type::kArray) return false;
  const Array& arr = coords->AsArray();
  if (arr.size() != 2 || !arr[0].IsNumber() || !arr[1].IsNumber()) {
    return false;
  }
  *lon = arr[0].NumberAsDouble();
  *lat = arr[1].NumberAsDouble();
  return true;
}

}  // namespace stix::bson
