#include "geo/egeohash.h"

#include <algorithm>

#include "geo/zorder.h"

namespace stix::geo {
namespace {

// Equi-depth boundaries over one axis: edge i sits at the i/n quantile of
// the sorted sample. Duplicate quantiles (heavy ties) produce empty cells,
// which are harmless: the mapping stays monotone and the covering just
// carries a few zero-width members. Endpoints are pinned by GridMapping.
std::vector<double> EquiDepthEdges(std::vector<double> values, uint32_t n,
                                   double lo, double hi) {
  std::vector<double> edges(static_cast<size_t>(n) + 1);
  edges.front() = lo;
  edges.back() = hi;
  std::sort(values.begin(), values.end());
  for (uint32_t i = 1; i < n; ++i) {
    const size_t idx = static_cast<size_t>(
        (static_cast<uint64_t>(i) * values.size()) / n);
    edges[i] = values[std::min(idx, values.size() - 1)];
  }
  return edges;
}

}  // namespace

GridMapping EntropyGeoHashCurve::FitMapping(int order, const Rect& domain,
                                            const std::vector<Point>& sample) {
  if (sample.empty()) return GridMapping(order, domain);
  const uint32_t n = static_cast<uint32_t>(1) << order;
  std::vector<double> lons, lats;
  lons.reserve(sample.size());
  lats.reserve(sample.size());
  for (const Point& p : sample) {
    lons.push_back(std::clamp(p.lon, domain.lo.lon, domain.hi.lon));
    lats.push_back(std::clamp(p.lat, domain.lo.lat, domain.hi.lat));
  }
  return GridMapping(
      order, domain,
      EquiDepthEdges(std::move(lons), n, domain.lo.lon, domain.hi.lon),
      EquiDepthEdges(std::move(lats), n, domain.lo.lat, domain.hi.lat));
}

uint64_t EntropyGeoHashCurve::XyToD(uint32_t x, uint32_t y) const {
  return MortonInterleave(order(), x, y);
}

void EntropyGeoHashCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  MortonDeinterleave(order(), d, x, y);
}

}  // namespace stix::geo
