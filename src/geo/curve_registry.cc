#include "geo/curve_registry.h"

#include "geo/egeohash.h"
#include "geo/hilbert.h"
#include "geo/onion.h"
#include "geo/zorder.h"

namespace stix::geo {

std::unique_ptr<Curve2D> MakeCurve(CurveKind kind, int order,
                                   const Rect& domain,
                                   const std::vector<Point>& fit_sample) {
  switch (kind) {
    case CurveKind::kHilbert:
      return std::make_unique<HilbertCurve>(order, domain);
    case CurveKind::kZOrder:
      return std::make_unique<ZOrderCurve>(order, domain);
    case CurveKind::kOnion:
      return std::make_unique<OnionCurve>(order, domain);
    case CurveKind::kEGeoHash:
      return std::make_unique<EntropyGeoHashCurve>(order, domain, fit_sample);
  }
  return nullptr;
}

std::vector<CurveKind> AllCurveKinds() {
  return {CurveKind::kHilbert, CurveKind::kZOrder, CurveKind::kOnion,
          CurveKind::kEGeoHash};
}

}  // namespace stix::geo
