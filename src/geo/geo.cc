#include "geo/geo.h"

namespace stix::geo {

namespace {
constexpr double kEarthRadiusM = 6371008.8;
}  // namespace

double HaversineMeters(Point a, Point b) {
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

Rect RectAroundPoint(Point center, double radius_m) {
  constexpr double kMetersPerDegLat = 111320.0;
  const double dlat = radius_m / kMetersPerDegLat;
  const double cos_lat =
      std::max(0.01, std::cos(center.lat * M_PI / 180.0));
  const double dlon = radius_m / (kMetersPerDegLat * cos_lat);
  Rect r;
  r.lo.lon = std::max(-180.0, center.lon - dlon);
  r.hi.lon = std::min(180.0, center.lon + dlon);
  r.lo.lat = std::max(-90.0, center.lat - dlat);
  r.hi.lat = std::min(90.0, center.lat + dlat);
  return r;
}

double RectAreaKm2(const Rect& r) {
  constexpr double kEarthRadiusKm = 6371.0088;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = r.lo.lat * kDegToRad;
  const double lat2 = r.hi.lat * kDegToRad;
  const double dlon = (r.hi.lon - r.lo.lon) * kDegToRad;
  if (dlon <= 0 || lat2 <= lat1) return 0.0;
  // Spherical zone area between two latitudes, scaled by the lon fraction.
  return kEarthRadiusKm * kEarthRadiusKm * dlon *
         (std::sin(lat2) - std::sin(lat1));
}

}  // namespace stix::geo
