#include "geo/curve.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace stix::geo {

const char* CurveKindName(CurveKind kind) {
  switch (kind) {
    case CurveKind::kHilbert:
      return "hilbert";
    case CurveKind::kZOrder:
      return "zorder";
    case CurveKind::kOnion:
      return "onion";
    case CurveKind::kEGeoHash:
      return "egeohash";
  }
  return "?";
}

bool CurveKindFromName(const char* name, CurveKind* out) {
  for (const CurveKind kind :
       {CurveKind::kHilbert, CurveKind::kZOrder, CurveKind::kOnion,
        CurveKind::kEGeoHash}) {
    if (std::strcmp(name, CurveKindName(kind)) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

GridMapping::GridMapping(int order, const Rect& domain)
    : order_(order), domain_(domain) {
  assert(order >= 1 && order <= 16 && "curve order must be in [1, 16]");
  cell_w_ = domain_.width() / static_cast<double>(grid_size());
  cell_h_ = domain_.height() / static_cast<double>(grid_size());
}

GridMapping::GridMapping(int order, const Rect& domain,
                         std::vector<double> x_edges,
                         std::vector<double> y_edges)
    : GridMapping(order, domain) {
  const size_t n = static_cast<size_t>(grid_size()) + 1;
  assert(x_edges.size() == n && y_edges.size() == n &&
         "edge tables need grid_size() + 1 boundaries");
  x_edges_ = std::move(x_edges);
  y_edges_ = std::move(y_edges);
  // Pin the endpoints to the domain exactly and force monotonicity, so the
  // clamping contract (max edge -> last cell, BlockRect ends at domain.hi)
  // holds regardless of how the caller fitted the interior boundaries.
  x_edges_.front() = domain_.lo.lon;
  x_edges_.back() = domain_.hi.lon;
  y_edges_.front() = domain_.lo.lat;
  y_edges_.back() = domain_.hi.lat;
  for (size_t i = 1; i < n; ++i) {
    x_edges_[i] = std::max(x_edges_[i], x_edges_[i - 1]);
    y_edges_[i] = std::max(y_edges_[i], y_edges_[i - 1]);
  }
}

uint32_t GridMapping::EdgeToCell(const std::vector<double>& edges,
                                 double v) const {
  // Cell i spans [edges[i], edges[i+1]); the last cell is closed on both
  // sides. Searching only the interior boundaries clamps out-of-domain
  // values (and the max edge itself) into the boundary cells for free.
  const auto first = edges.begin() + 1;
  const auto last = edges.end() - 1;
  return static_cast<uint32_t>(std::upper_bound(first, last, v) - first);
}

uint32_t GridMapping::LonToX(double lon) const {
  if (warped()) return EdgeToCell(x_edges_, lon);
  const double t = (lon - domain_.lo.lon) / cell_w_;
  if (t <= 0.0) return 0;
  const uint32_t max = grid_size() - 1;
  // Clamp in double space *before* the integer cast: casting a value at or
  // beyond 2^32 to uint32_t is undefined, and the domain's max edge
  // (t == grid_size) must land in the last cell, not one past it.
  if (t >= static_cast<double>(max)) return max;
  return static_cast<uint32_t>(t);
}

uint32_t GridMapping::LatToY(double lat) const {
  if (warped()) return EdgeToCell(y_edges_, lat);
  const double t = (lat - domain_.lo.lat) / cell_h_;
  if (t <= 0.0) return 0;
  const uint32_t max = grid_size() - 1;
  if (t >= static_cast<double>(max)) return max;
  return static_cast<uint32_t>(t);
}

Rect GridMapping::BlockRect(uint32_t x, uint32_t y, uint32_t size) const {
  const uint32_t n = grid_size();
  const uint32_t x1 = x + size >= n ? n : x + size;
  const uint32_t y1 = y + size >= n ? n : y + size;
  Rect r;
  if (warped()) {
    r.lo.lon = x_edges_[x];
    r.lo.lat = y_edges_[y];
    r.hi.lon = x_edges_[x1];
    r.hi.lat = y_edges_[y1];
    return r;
  }
  r.lo.lon = domain_.lo.lon + cell_w_ * static_cast<double>(x);
  r.lo.lat = domain_.lo.lat + cell_h_ * static_cast<double>(y);
  // Blocks on the grid's max edge end exactly at domain.hi: accumulating
  // cell_w_ * n can fall an ulp short of it, which would put a point keyed
  // into the last cell outside that cell's reported extent.
  r.hi.lon = x1 == n ? domain_.hi.lon
                     : domain_.lo.lon + cell_w_ * static_cast<double>(x1);
  r.hi.lat = y1 == n ? domain_.hi.lat
                     : domain_.lo.lat + cell_h_ * static_cast<double>(y1);
  return r;
}

}  // namespace stix::geo
