#include "geo/curve.h"

#include <cassert>

namespace stix::geo {

GridMapping::GridMapping(int order, const Rect& domain)
    : order_(order), domain_(domain) {
  assert(order >= 1 && order <= 16 && "curve order must be in [1, 16]");
  cell_w_ = domain_.width() / static_cast<double>(grid_size());
  cell_h_ = domain_.height() / static_cast<double>(grid_size());
}

uint32_t GridMapping::LonToX(double lon) const {
  const double t = (lon - domain_.lo.lon) / cell_w_;
  if (t <= 0.0) return 0;
  const uint32_t max = grid_size() - 1;
  const uint32_t x = static_cast<uint32_t>(t);
  return x > max ? max : x;
}

uint32_t GridMapping::LatToY(double lat) const {
  const double t = (lat - domain_.lo.lat) / cell_h_;
  if (t <= 0.0) return 0;
  const uint32_t max = grid_size() - 1;
  const uint32_t y = static_cast<uint32_t>(t);
  return y > max ? max : y;
}

Rect GridMapping::BlockRect(uint32_t x, uint32_t y, uint32_t size) const {
  Rect r;
  r.lo.lon = domain_.lo.lon + cell_w_ * static_cast<double>(x);
  r.lo.lat = domain_.lo.lat + cell_h_ * static_cast<double>(y);
  r.hi.lon = r.lo.lon + cell_w_ * static_cast<double>(size);
  r.hi.lat = r.lo.lat + cell_h_ * static_cast<double>(size);
  return r;
}

}  // namespace stix::geo
