#ifndef STIX_GEO_CURVE_H_
#define STIX_GEO_CURVE_H_

#include <cstdint>

#include "geo/geo.h"

namespace stix::geo {

/// Maps geographic coordinates onto a 2^order x 2^order integer grid over a
/// domain rectangle. Both curves (Hilbert, Z-order) and the GeoHash cells
/// share this mapping, so `hil` vs `hil*` differ only in the domain passed
/// here (globe vs dataset MBR) — exactly the paper's setup.
class GridMapping {
 public:
  GridMapping(int order, const Rect& domain);

  int order() const { return order_; }
  uint32_t grid_size() const { return static_cast<uint32_t>(1) << order_; }
  const Rect& domain() const { return domain_; }

  /// Longitude -> column, clamped into the grid.
  uint32_t LonToX(double lon) const;
  /// Latitude -> row, clamped into the grid.
  uint32_t LatToY(double lat) const;

  /// Geographic extent of the aligned block with corner cell (x, y) spanning
  /// `size` cells per side.
  Rect BlockRect(uint32_t x, uint32_t y, uint32_t size) const;

 private:
  int order_;
  Rect domain_;
  double cell_w_;
  double cell_h_;
};

/// A 2D space-filling curve over a grid: a bijection between cells (x, y)
/// and positions d in [0, 4^order). Implementations must satisfy the
/// quadtree-block property: every aligned 2^k x 2^k block occupies a
/// contiguous, 4^k-aligned range of d values — this is what makes covering
/// a query rectangle with 1D ranges cheap (see covering.h).
class Curve2D {
 public:
  Curve2D(int order, const Rect& domain) : grid_(order, domain) {}
  virtual ~Curve2D() = default;

  virtual uint64_t XyToD(uint32_t x, uint32_t y) const = 0;
  virtual void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const = 0;

  /// Human-readable curve name for benchmark tables ("hilbert", "zorder").
  virtual const char* name() const = 0;

  const GridMapping& grid() const { return grid_; }
  int order() const { return grid_.order(); }
  uint64_t num_cells() const {
    return static_cast<uint64_t>(1) << (2 * grid_.order());
  }

  /// 1D position of the cell containing a geographic point.
  uint64_t PointToD(double lon, double lat) const {
    return XyToD(grid_.LonToX(lon), grid_.LatToY(lat));
  }

 private:
  GridMapping grid_;
};

}  // namespace stix::geo

#endif  // STIX_GEO_CURVE_H_
