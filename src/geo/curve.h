#ifndef STIX_GEO_CURVE_H_
#define STIX_GEO_CURVE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/geo.h"

namespace stix::geo {

/// The pluggable 1D linearizations behind hilbertIndex. `kHilbert` is the
/// paper's choice; the others are the ROADMAP's curve-lab alternatives
/// (Onion: Xu/Nguyen/Tirthapura; entropy-maximizing GeoHash: Arnold — see
/// PAPERS.md). Every kind is a Curve2D, so stores, covering, fuzzing and
/// benches treat them uniformly.
enum class CurveKind {
  kHilbert,   ///< Hilbert curve (paper default).
  kZOrder,    ///< Z-order / Morton (GeoHash bit layout).
  kOnion,     ///< Onion curve: concentric rings, near-optimal clustering.
  kEGeoHash,  ///< Z-order over skew-fitted equi-depth cell boundaries.
};

/// Canonical lower-case name ("hilbert", "zorder", "onion", "egeohash") —
/// matches Curve2D::name() of the corresponding implementation.
const char* CurveKindName(CurveKind kind);

/// Parses a CurveKindName back; returns false on unknown names.
bool CurveKindFromName(const char* name, CurveKind* out);

/// Maps geographic coordinates onto a 2^order x 2^order integer grid over a
/// domain rectangle. Curves (Hilbert, Z-order, Onion) and the GeoHash cells
/// share this mapping, so `hil` vs `hil*` differ only in the domain passed
/// here (globe vs dataset MBR) — exactly the paper's setup.
///
/// By default cells are uniform (domain / grid_size per axis). A mapping may
/// instead carry per-axis *edge tables* — monotone boundary arrays of
/// grid_size()+1 entries fitted to the data distribution (the
/// entropy-maximizing GeoHash) — in which case LonToX/LatToY binary-search
/// the tables and BlockRect reads extents straight from them, keeping the
/// two views of a cell bit-identical.
///
/// Clamping contract (the covering layer and the key generator both rely on
/// it): out-of-domain coordinates clamp to the boundary cells, and a point
/// exactly on the domain's max edge lands in the *last* cell — whose
/// BlockRect extent ends exactly at domain().hi, so the point lies inside
/// its own cell's rectangle.
class GridMapping {
 public:
  GridMapping(int order, const Rect& domain);

  /// Warped mapping: `x_edges`/`y_edges` hold grid_size()+1 non-decreasing
  /// cell boundaries per axis with first == domain.lo and last == domain.hi
  /// on that axis (endpoints are overwritten to guarantee it).
  GridMapping(int order, const Rect& domain, std::vector<double> x_edges,
              std::vector<double> y_edges);

  int order() const { return order_; }
  uint32_t grid_size() const { return static_cast<uint32_t>(1) << order_; }
  const Rect& domain() const { return domain_; }

  /// True when this mapping carries fitted edge tables.
  bool warped() const { return !x_edges_.empty(); }

  /// Longitude -> column, clamped into the grid.
  uint32_t LonToX(double lon) const;
  /// Latitude -> row, clamped into the grid.
  uint32_t LatToY(double lat) const;

  /// Geographic extent of the aligned block with corner cell (x, y) spanning
  /// `size` cells per side. Blocks touching the grid's max edge extend
  /// exactly to domain().hi (never an ulp short), so max-edge points agree
  /// with the cells LonToX/LatToY assign them.
  Rect BlockRect(uint32_t x, uint32_t y, uint32_t size) const;

 private:
  uint32_t EdgeToCell(const std::vector<double>& edges, double v) const;

  int order_;
  Rect domain_;
  double cell_w_;
  double cell_h_;
  /// Empty for uniform mappings; grid_size()+1 boundaries otherwise.
  std::vector<double> x_edges_;
  std::vector<double> y_edges_;
};

/// A 2D space-filling curve over a grid: a bijection between cells (x, y)
/// and positions d in [0, 4^order).
///
/// Curves advertising quadtree_blocks() (Hilbert, Z-order, EGeoHash)
/// guarantee the quadtree-block property: every aligned 2^k x 2^k block
/// occupies a contiguous, 4^k-aligned range of d values — which makes
/// covering a query rectangle cheap by quadtree descent. Curves without it
/// (Onion) must instead be *continuous* (consecutive d values are
/// edge-adjacent cells) so the covering layer can fall back to its
/// boundary-walk strategy (see covering.h).
class Curve2D {
 public:
  Curve2D(int order, const Rect& domain) : grid_(order, domain) {}
  explicit Curve2D(GridMapping grid) : grid_(std::move(grid)) {}
  virtual ~Curve2D() = default;

  virtual uint64_t XyToD(uint32_t x, uint32_t y) const = 0;
  virtual void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const = 0;

  /// Human-readable curve name for benchmark tables and explain() — equals
  /// CurveKindName of the implementing kind.
  virtual const char* name() const = 0;

  /// Whether aligned blocks map to aligned contiguous d-ranges (see class
  /// comment). Selects the covering strategy.
  virtual bool quadtree_blocks() const { return true; }

  const GridMapping& grid() const { return grid_; }
  int order() const { return grid_.order(); }
  uint64_t num_cells() const {
    return static_cast<uint64_t>(1) << (2 * grid_.order());
  }

  /// 1D position of the cell containing a geographic point.
  uint64_t PointToD(double lon, double lat) const {
    return XyToD(grid_.LonToX(lon), grid_.LatToY(lat));
  }

 private:
  GridMapping grid_;
};

}  // namespace stix::geo

#endif  // STIX_GEO_CURVE_H_
