#ifndef STIX_GEO_ONION_H_
#define STIX_GEO_ONION_H_

#include "geo/curve.h"

namespace stix::geo {

/// The Onion curve (Xu, Nguyen, Tirthapura — see PAPERS.md): cells are
/// visited in concentric square rings from the grid's outer boundary inward,
/// each ring walked as one continuous loop that ends adjacent to the next
/// ring's start. The construction achieves near-optimal clustering for
/// square range queries — a query rect deep inside the grid intersects few
/// rings, each contributing one contiguous d-range.
///
/// The curve is *continuous* (consecutive d values are edge-adjacent cells)
/// but does NOT have the quadtree-block property: an aligned 2^k block
/// straddles many rings, so its d values are not one aligned interval.
/// quadtree_blocks() is false, which routes covering through the
/// boundary-walk strategy (covering.h).
class OnionCurve : public Curve2D {
 public:
  OnionCurve(int order, const Rect& domain) : Curve2D(order, domain) {}

  uint64_t XyToD(uint32_t x, uint32_t y) const override;
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const override;
  const char* name() const override { return "onion"; }
  bool quadtree_blocks() const override { return false; }
};

}  // namespace stix::geo

#endif  // STIX_GEO_ONION_H_
