#ifndef STIX_GEO_CURVE_REGISTRY_H_
#define STIX_GEO_CURVE_REGISTRY_H_

#include <memory>
#include <vector>

#include "geo/curve.h"

namespace stix::geo {

/// Builds the Curve2D implementation for `kind` over a 2^order grid spanning
/// `domain`. `fit_sample` is consulted only by kEGeoHash (equi-depth
/// boundary fit; empty = uniform boundaries — plain GeoHash cell layout).
/// This is the one place that knows every concrete curve class; stores,
/// benches and the fuzzer go through it so a new curve is one registry case
/// away from running everywhere.
std::unique_ptr<Curve2D> MakeCurve(CurveKind kind, int order,
                                   const Rect& domain,
                                   const std::vector<Point>& fit_sample = {});

/// Every registered kind, in a stable order — the "all" axis of benches and
/// the fuzzer.
std::vector<CurveKind> AllCurveKinds();

}  // namespace stix::geo

#endif  // STIX_GEO_CURVE_REGISTRY_H_
