#include "geo/zorder.h"

namespace stix::geo {

uint64_t MortonInterleave(int order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  // Longitude (x) takes the more significant bit of each pair, matching
  // GeoHash, whose first bit splits the world east/west.
  for (int bit = order - 1; bit >= 0; --bit) {
    d = (d << 1) | ((x >> bit) & 1);
    d = (d << 1) | ((y >> bit) & 1);
  }
  return d;
}

void MortonDeinterleave(int order, uint64_t d, uint32_t* x, uint32_t* y) {
  *x = 0;
  *y = 0;
  for (int bit = order - 1; bit >= 0; --bit) {
    *x = (*x << 1) | static_cast<uint32_t>((d >> (2 * bit + 1)) & 1);
    *y = (*y << 1) | static_cast<uint32_t>((d >> (2 * bit)) & 1);
  }
}

uint64_t ZOrderCurve::XyToD(uint32_t x, uint32_t y) const {
  return MortonInterleave(order(), x, y);
}

void ZOrderCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  MortonDeinterleave(order(), d, x, y);
}

}  // namespace stix::geo
