#include "geo/onion.h"

#include <cassert>
#include <cmath>

namespace stix::geo {
namespace {

// Ring r of an n x n grid is the square perimeter of [r, n-1-r]^2; its side
// is m = n - 2r and it holds 4(m-1) cells (m >= 2 always: n is a power of
// two, so the innermost ring is the 2x2 center). The walk starts at local
// (0, 0), runs along the bottom edge, up the right edge, back along the top
// and down the left edge, ending at local (0, 1) — edge-adjacent to the
// next ring's start at (1, 1) in this ring's local frame, which keeps the
// whole curve continuous across rings.
//
// base(r) = cells in rings 0..r-1 = n^2 - (n - 2r)^2.

uint64_t Square(uint64_t v) { return v * v; }

}  // namespace

uint64_t OnionCurve::XyToD(uint32_t x, uint32_t y) const {
  const uint32_t n = grid().grid_size();
  const uint32_t r =
      std::min(std::min(x, y), std::min(n - 1 - x, n - 1 - y));
  const uint32_t m = n - 2 * r;
  const uint32_t lx = x - r;
  const uint32_t ly = y - r;
  const uint64_t base = Square(n) - Square(m);
  uint64_t pos;
  if (ly == 0) {
    pos = lx;
  } else if (lx == m - 1) {
    pos = (m - 1) + ly;
  } else if (ly == m - 1) {
    pos = 2ULL * (m - 1) + (m - 1 - lx);
  } else {
    pos = 3ULL * (m - 1) + (m - 1 - ly);
  }
  return base + pos;
}

void OnionCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  const uint32_t n = grid().grid_size();
  const uint64_t n2 = Square(n);
  assert(d < n2 && "d out of range");
  // Find the ring: the smallest even-offset side m with m^2 >= n^2 - d.
  // Seed from a double sqrt, then fix up in +/-2 steps (the seed is at most
  // one step off for any representable n <= 2^16).
  const uint64_t q = n2 - d;
  uint64_t m = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(q))));
  if ((m ^ n) & 1) ++m;  // ring sides share the grid side's parity
  if (m < 2) m = 2;
  if (m > n) m = n;
  while (m > 2 && Square(m - 2) >= q) m -= 2;
  while (Square(m) < q) m += 2;
  const uint32_t r = (n - static_cast<uint32_t>(m)) / 2;
  const uint64_t pos = d - (n2 - Square(m));
  const uint64_t side = m - 1;
  uint64_t lx, ly;
  if (pos <= side) {
    lx = pos;
    ly = 0;
  } else if (pos <= 2 * side) {
    lx = side;
    ly = pos - side;
  } else if (pos <= 3 * side) {
    lx = side - (pos - 2 * side);
    ly = side;
  } else {
    lx = 0;
    ly = side - (pos - 3 * side);
  }
  *x = r + static_cast<uint32_t>(lx);
  *y = r + static_cast<uint32_t>(ly);
}

}  // namespace stix::geo
