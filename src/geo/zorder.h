#ifndef STIX_GEO_ZORDER_H_
#define STIX_GEO_ZORDER_H_

#include "geo/curve.h"

namespace stix::geo {

/// Morton bit interleaving with the longitude (x) bit first per pair —
/// exactly the bit layout of GeoHash, whose first bit splits the world
/// east/west. Shared by ZOrderCurve and the entropy-maximizing GeoHash
/// (which interleaves the same way over a warped grid).
uint64_t MortonInterleave(int order, uint32_t x, uint32_t y);
void MortonDeinterleave(int order, uint64_t d, uint32_t* x, uint32_t* y);

/// The Z-order (Morton) curve: plain bit interleaving with the longitude bit
/// first, which is exactly the bit layout of GeoHash. Kept behind the same
/// Curve2D interface as Hilbert so the ablation bench can compare covering
/// quality of the 1D mappings head to head.
class ZOrderCurve : public Curve2D {
 public:
  ZOrderCurve(int order, const Rect& domain) : Curve2D(order, domain) {}

  uint64_t XyToD(uint32_t x, uint32_t y) const override;
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const override;
  const char* name() const override { return "zorder"; }
};

}  // namespace stix::geo

#endif  // STIX_GEO_ZORDER_H_
