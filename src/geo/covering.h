#ifndef STIX_GEO_COVERING_H_
#define STIX_GEO_COVERING_H_

#include <cstdint>
#include <vector>

#include "geo/curve.h"
#include "geo/region.h"

namespace stix::geo {

/// A closed interval [lo, hi] of curve positions.
struct DRange {
  uint64_t lo;
  uint64_t hi;

  friend bool operator==(const DRange& a, const DRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Result of covering a query rectangle with curve ranges: the exact set of
/// cells whose extent intersects the rectangle, compressed into maximal
/// contiguous 1D ranges — the paper's "$or of $gte/$lte ranges plus $in of
/// individual cells" (Section 4.2.2).
struct Covering {
  std::vector<DRange> ranges;  ///< Sorted, disjoint, non-adjacent.
  uint64_t num_cells = 0;      ///< Total cells covered (sum of range widths).

  /// Ranges of width one — the paper sends these through $in, wider ones
  /// through $gte/$lte pairs.
  size_t NumSingletons() const;
};

/// Covering options.
struct CoveringOptions {
  /// If > 0, coarsen the covering to at most this many ranges — a hard cap,
  /// identical for both strategies below: the result is a *sound superset*
  /// of the exact covering (the quadtree descent emits frontier blocks
  /// whole, then both strategies bridge the smallest inter-range gaps until
  /// the cap holds), so a capped covering can add false positives but never
  /// drop a cell. More ranges = tighter covering = fewer false positives
  /// but a bigger $or. 0 = exact covering.
  size_t max_ranges = 0;
};

/// Computes the covering of `query` under `curve`, picking one of two
/// strategies by `curve.quadtree_blocks()`:
///
/// * Quadtree descent (Hilbert, Z-order, EGeoHash): blocks disjoint from
///   the query are pruned, fully contained blocks emit their whole
///   (contiguous, aligned) d-range, partial blocks recurse. Cost is
///   O(perimeter cells * order), never proportional to the query area —
///   this is the "Hilbert algorithm" whose runtime Table 8 reports.
/// * Boundary walk (Onion): valid for any *continuous* curve — a maximal
///   d-interval of in-span cells can only start/end where the predecessor/
///   successor cell leaves the span, and by continuity those cells sit on
///   the span's perimeter. Classify the perimeter cells, sort, zip into
///   ranges. Also O(perimeter cells).
///
/// Rectangles descend in *integer cell coordinates*: the query is mapped to
/// the inclusive cell span [LonToX(lo.lon), LonToX(hi.lon)] x
/// [LatToY(lo.lat), LatToY(hi.lat)] — the same clamped mapping document
/// keys use — so the covering contains every cell any in-rect point maps
/// to, bit-for-bit. Queries reaching outside the grid domain (antimeridian,
/// poles, beyond a dataset MBR) clamp to the boundary cells, exactly where
/// out-of-domain documents are keyed; the covering of a rectangle is
/// therefore never empty.
Covering CoverRect(const Curve2D& curve, const Rect& query,
                   const CoveringOptions& options = {});

/// Same descent over an arbitrary region (polygon support — the paper's
/// complex-geometry future-work item).
Covering CoverRegion(const Curve2D& curve, const Region& region,
                     const CoveringOptions& options = {});

/// True iff `d` falls inside one of the covering's ranges (binary search);
/// used by tests and the curve-ablation bench.
bool CoveringContains(const Covering& covering, uint64_t d);

}  // namespace stix::geo

#endif  // STIX_GEO_COVERING_H_
