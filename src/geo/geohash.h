#ifndef STIX_GEO_GEOHASH_H_
#define STIX_GEO_GEOHASH_H_

#include <cstdint>
#include <string>

#include "geo/geo.h"
#include "geo/zorder.h"

namespace stix::geo {

/// GeoHash — MongoDB's spatial hashing scheme: Z-order bit interleaving over
/// the whole globe. MongoDB's 2dsphere B-tree stores 26-bit hashes by
/// default (13 bits per dimension); the classic public GeoHash is the same
/// bits rendered in base32.
class GeoHash {
 public:
  /// Total bits must be even and in [2, 32]; MongoDB's default is 26.
  static constexpr int kDefaultBits = 26;

  explicit GeoHash(int total_bits = kDefaultBits);

  int total_bits() const { return total_bits_; }
  int bits_per_dim() const { return total_bits_ / 2; }

  /// Hash of the cell containing (lon, lat): the top `total_bits` of the
  /// interleaved Z-order value.
  uint64_t Encode(double lon, double lat) const;

  /// Geographic extent of a cell hash.
  Rect CellRect(uint64_t hash) const;

  /// Underlying curve (used by coverings of $geoWithin predicates).
  const ZOrderCurve& curve() const { return curve_; }

 private:
  int total_bits_;
  ZOrderCurve curve_;
};

/// Classic base32 GeoHash string of a point ("swbb5ftzes" for Athens at
/// precision 10), provided for interoperability and the curves_demo example.
/// `precision` counts base32 characters (5 bits each).
std::string GeoHashBase32(double lon, double lat, int precision);

/// Inverse of GeoHashBase32: center of the cell the string addresses.
/// Returns false on invalid characters.
bool GeoHashBase32Decode(const std::string& hash, double* lon, double* lat);

}  // namespace stix::geo

#endif  // STIX_GEO_GEOHASH_H_
