#include "geo/covering.h"

#include <algorithm>

namespace stix::geo {
namespace {

// Emits the d-range of the aligned block with corner (x, y) and side 2^k.
// The quadtree-block property of both curves guarantees the range is the
// aligned interval of width 4^k containing any of the block's cells.
void EmitBlock(const Curve2D& curve, uint32_t x, uint32_t y, int k,
               std::vector<DRange>* out) {
  const uint64_t width = static_cast<uint64_t>(1) << (2 * k);
  const uint64_t base = curve.XyToD(x, y) & ~(width - 1);
  out->push_back(DRange{base, base + width - 1});
}

// Sorts and merges contiguous/overlapping ranges so consecutive cells become
// one interval (the paper's range-vs-$in distinction relies on this), then
// tallies num_cells.
void SortMergeCount(Covering* covering) {
  std::sort(covering->ranges.begin(), covering->ranges.end(),
            [](const DRange& a, const DRange& b) { return a.lo < b.lo; });
  std::vector<DRange> merged;
  merged.reserve(covering->ranges.size());
  for (const DRange& r : covering->ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  covering->ranges = std::move(merged);
  covering->num_cells = 0;
  for (const DRange& r : covering->ranges) {
    covering->num_cells += r.hi - r.lo + 1;
  }
}

// ---- Rectangles: exact descent in integer cell coordinates. ----
//
// The query rectangle is mapped to an inclusive cell span through the SAME
// clamped LonToX/LatToY the index key generator applies to documents, and
// the descent intersects aligned blocks with that span in pure integer
// arithmetic. Monotonicity of the coordinate mapping then guarantees: every
// point inside the query rect maps to a cell inside the span, so the
// covering can never miss a matching document — including points clamped in
// from outside the grid domain (antimeridian, poles, outside a dataset
// MBR), which land in the boundary cells the clamped span includes. The
// previous floating-point block-extent test could disagree with the key
// mapping by one cell at ulp-level boundaries and silently drop documents.

struct CellSpan {
  uint32_t x0, y0, x1, y1;  // inclusive
};

bool SpanContains(const CellSpan& s, uint32_t x, uint32_t y) {
  return x >= s.x0 && x <= s.x1 && y >= s.y0 && y <= s.y1;
}

// ---- Continuous curves without quadtree blocks: boundary walk. ----
//
// The Onion curve visits cells in one continuous path (consecutive d values
// are edge-adjacent cells) but an aligned block's d values are not one
// aligned interval, so the quadtree descent below does not apply. For any
// continuous curve the d values of the cells inside the query span still
// form a union of maximal intervals, and an interval can only *begin* at a
// cell whose predecessor cell (d - 1) lies outside the span, and *end* at
// one whose successor lies outside. By continuity those neighbours are grid
// neighbours, so qualifying cells always sit on the span's perimeter:
// enumerate the perimeter (O(width + height) cells, never the area),
// classify each cell, sort the starts and ends, and zip them into ranges —
// maximal, sorted, disjoint and non-adjacent by construction.

void ClassifyPerimeterCell(const Curve2D& curve, const CellSpan& span,
                           uint32_t x, uint32_t y,
                           std::vector<uint64_t>* starts,
                           std::vector<uint64_t>* ends) {
  const uint64_t d = curve.XyToD(x, y);
  uint32_t nx, ny;
  bool is_start = d == 0;
  if (!is_start) {
    curve.DToXy(d - 1, &nx, &ny);
    is_start = !SpanContains(span, nx, ny);
  }
  if (is_start) starts->push_back(d);
  bool is_end = d == curve.num_cells() - 1;
  if (!is_end) {
    curve.DToXy(d + 1, &nx, &ny);
    is_end = !SpanContains(span, nx, ny);
  }
  if (is_end) ends->push_back(d);
}

// Coarsens `covering` to at most `max_ranges` ranges by bridging the
// smallest inter-range gaps (keeping the max_ranges - 1 widest gaps as the
// surviving splits). Bridged gap cells join num_cells — the same sound-
// superset budget contract as the descent's whole-frontier-block emission:
// fewer, wider ranges, never a missed cell.
void MergeSmallestGaps(Covering* covering, size_t max_ranges) {
  const std::vector<DRange>& ranges = covering->ranges;
  std::vector<std::pair<uint64_t, size_t>> gaps;  // (width, follower index)
  gaps.reserve(ranges.size() - 1);
  for (size_t i = 1; i < ranges.size(); ++i) {
    gaps.emplace_back(ranges[i].lo - ranges[i - 1].hi - 1, i);
  }
  // Deterministic: widest gaps survive, ties broken by position.
  std::sort(gaps.begin(), gaps.end(),
            [](const std::pair<uint64_t, size_t>& a,
               const std::pair<uint64_t, size_t>& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::vector<bool> split(ranges.size(), false);
  for (size_t i = 0; i + 1 < max_ranges && i < gaps.size(); ++i) {
    split[gaps[i].second] = true;
  }
  std::vector<DRange> merged;
  merged.reserve(max_ranges);
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (i == 0 || split[i]) {
      merged.push_back(ranges[i]);
    } else {
      merged.back().hi = ranges[i].hi;
    }
  }
  covering->ranges = std::move(merged);
  covering->num_cells = 0;
  for (const DRange& r : covering->ranges) {
    covering->num_cells += r.hi - r.lo + 1;
  }
}

Covering CoverSpanByBoundaryWalk(const Curve2D& curve, const CellSpan& span,
                                 size_t max_ranges) {
  std::vector<uint64_t> starts, ends;
  for (uint32_t x = span.x0; x <= span.x1; ++x) {
    ClassifyPerimeterCell(curve, span, x, span.y0, &starts, &ends);
    if (span.y1 != span.y0) {
      ClassifyPerimeterCell(curve, span, x, span.y1, &starts, &ends);
    }
  }
  for (uint32_t y = span.y0 + 1; y < span.y1; ++y) {
    ClassifyPerimeterCell(curve, span, span.x0, y, &starts, &ends);
    if (span.x1 != span.x0) {
      ClassifyPerimeterCell(curve, span, span.x1, y, &starts, &ends);
    }
  }
  // The walk's globally-first and -last cells start/end an interval without
  // an outside neighbour to betray it, and they need not sit on the span's
  // perimeter: Onion's last d is the grid's *center* cell, strictly interior
  // to any span containing it. Classify them explicitly when the perimeter
  // loops missed them.
  for (const uint64_t extreme : {uint64_t{0}, curve.num_cells() - 1}) {
    uint32_t ex, ey;
    curve.DToXy(extreme, &ex, &ey);
    const bool on_perimeter =
        ex == span.x0 || ex == span.x1 || ey == span.y0 || ey == span.y1;
    if (SpanContains(span, ex, ey) && !on_perimeter) {
      ClassifyPerimeterCell(curve, span, ex, ey, &starts, &ends);
    }
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  // Maximal intervals pair one start with one end; because the intervals
  // are disjoint, the i-th smallest start closes at the i-th smallest end.
  Covering covering;
  covering.ranges.reserve(starts.size());
  for (size_t i = 0; i < starts.size() && i < ends.size(); ++i) {
    covering.ranges.push_back(DRange{starts[i], ends[i]});
    covering.num_cells += ends[i] - starts[i] + 1;
  }
  if (max_ranges > 0 && covering.ranges.size() > max_ranges) {
    MergeSmallestGaps(&covering, max_ranges);
  }
  return covering;
}

struct RectDescentState {
  const Curve2D* curve;
  CellSpan span;
  size_t max_ranges;
  std::vector<DRange>* out;
};

void DescendCells(const RectDescentState& s, uint32_t x, uint32_t y, int k) {
  const uint32_t size = static_cast<uint32_t>(1) << k;
  const uint32_t bx1 = x + size - 1;
  const uint32_t by1 = y + size - 1;
  if (x > s.span.x1 || bx1 < s.span.x0 || y > s.span.y1 || by1 < s.span.y0) {
    return;
  }
  const bool contained = x >= s.span.x0 && bx1 <= s.span.x1 &&
                         y >= s.span.y0 && by1 <= s.span.y1;
  if (contained || k == 0 ||
      (s.max_ranges > 0 && s.out->size() >= s.max_ranges)) {
    EmitBlock(*s.curve, x, y, k, s.out);
    return;
  }
  const uint32_t half = size / 2;
  DescendCells(s, x, y, k - 1);
  DescendCells(s, x + half, y, k - 1);
  DescendCells(s, x, y + half, k - 1);
  DescendCells(s, x + half, y + half, k - 1);
}

// ---- Arbitrary regions: geometric descent on block extents. ----

struct RegionDescentState {
  const Curve2D* curve;
  const Region* query;
  size_t max_ranges;
  std::vector<DRange>* out;
};

void DescendRegion(const RegionDescentState& s, uint32_t x, uint32_t y,
                   int k) {
  const uint32_t size = static_cast<uint32_t>(1) << k;
  const Rect block = s.curve->grid().BlockRect(x, y, size);
  if (!s.query->IntersectsRect(block)) return;
  if (s.query->ContainsRect(block) || k == 0 ||
      (s.max_ranges > 0 && s.out->size() >= s.max_ranges)) {
    EmitBlock(*s.curve, x, y, k, s.out);
    return;
  }
  const uint32_t half = size / 2;
  DescendRegion(s, x, y, k - 1);
  DescendRegion(s, x + half, y, k - 1);
  DescendRegion(s, x, y + half, k - 1);
  DescendRegion(s, x + half, y + half, k - 1);
}

}  // namespace

size_t Covering::NumSingletons() const {
  size_t n = 0;
  for (const DRange& r : ranges) {
    if (r.lo == r.hi) ++n;
  }
  return n;
}

Covering CoverRect(const Curve2D& curve, const Rect& query,
                   const CoveringOptions& options) {
  const GridMapping& grid = curve.grid();
  CellSpan span;
  span.x0 = grid.LonToX(std::min(query.lo.lon, query.hi.lon));
  span.x1 = grid.LonToX(std::max(query.lo.lon, query.hi.lon));
  span.y0 = grid.LatToY(std::min(query.lo.lat, query.hi.lat));
  span.y1 = grid.LatToY(std::max(query.lo.lat, query.hi.lat));
  if (!curve.quadtree_blocks()) {
    return CoverSpanByBoundaryWalk(curve, span, options.max_ranges);
  }
  Covering covering;
  RectDescentState state{&curve, span, options.max_ranges, &covering.ranges};
  DescendCells(state, 0, 0, curve.order());
  SortMergeCount(&covering);
  // The descent's early-out keeps the budget approximately (whole frontier
  // blocks can merge into more than max_ranges intervals); the gap-bridging
  // pass makes it a hard cap — the same contract the boundary walk honours.
  if (options.max_ranges > 0 && covering.ranges.size() > options.max_ranges) {
    MergeSmallestGaps(&covering, options.max_ranges);
  }
  return covering;
}

Covering CoverRegion(const Curve2D& curve, const Region& region,
                     const CoveringOptions& options) {
  Rect rect;
  if (region.AsRect(&rect)) return CoverRect(curve, rect, options);
  if (!curve.quadtree_blocks()) {
    // Non-quadtree curves cover the region's bounding box: a sound superset
    // (the caller's residual geo predicate refines at FETCH), and the
    // boundary walk stays O(perimeter).
    return CoverRect(curve, region.BoundingBox(), options);
  }
  Covering covering;
  RegionDescentState state{&curve, &region, options.max_ranges,
                           &covering.ranges};
  DescendRegion(state, 0, 0, curve.order());
  SortMergeCount(&covering);
  if (options.max_ranges > 0 && covering.ranges.size() > options.max_ranges) {
    MergeSmallestGaps(&covering, options.max_ranges);
  }
  return covering;
}

bool CoveringContains(const Covering& covering, uint64_t d) {
  const auto it = std::upper_bound(
      covering.ranges.begin(), covering.ranges.end(), d,
      [](uint64_t value, const DRange& r) { return value < r.lo; });
  if (it == covering.ranges.begin()) return false;
  return d <= std::prev(it)->hi;
}

}  // namespace stix::geo
