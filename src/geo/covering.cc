#include "geo/covering.h"

#include <algorithm>

namespace stix::geo {
namespace {

struct DescentState {
  const Curve2D* curve;
  const Region* query;
  size_t max_ranges;
  std::vector<DRange>* out;
};

// Emits the d-range of the aligned block with corner (x, y) and side 2^k.
// The quadtree-block property of both curves guarantees the range is the
// aligned interval of width 4^k containing any of the block's cells.
void EmitBlock(const DescentState& s, uint32_t x, uint32_t y, int k) {
  const uint64_t width = static_cast<uint64_t>(1) << (2 * k);
  const uint64_t base = s.curve->XyToD(x, y) & ~(width - 1);
  s.out->push_back(DRange{base, base + width - 1});
}

void Descend(const DescentState& s, uint32_t x, uint32_t y, int k) {
  const uint32_t size = static_cast<uint32_t>(1) << k;
  const Rect block = s.curve->grid().BlockRect(x, y, size);
  if (!s.query->IntersectsRect(block)) return;
  if (s.query->ContainsRect(block) || k == 0 ||
      (s.max_ranges > 0 && s.out->size() >= s.max_ranges)) {
    EmitBlock(s, x, y, k);
    return;
  }
  const uint32_t half = size / 2;
  Descend(s, x, y, k - 1);
  Descend(s, x + half, y, k - 1);
  Descend(s, x, y + half, k - 1);
  Descend(s, x + half, y + half, k - 1);
}

}  // namespace

size_t Covering::NumSingletons() const {
  size_t n = 0;
  for (const DRange& r : ranges) {
    if (r.lo == r.hi) ++n;
  }
  return n;
}

Covering CoverRegion(const Curve2D& curve, const Region& region,
                     const CoveringOptions& options) {
  Covering covering;
  DescentState state{&curve, &region, options.max_ranges, &covering.ranges};
  Descend(state, 0, 0, curve.order());

  // Sort and merge contiguous/overlapping ranges so consecutive cells become
  // one interval (the paper's range-vs-$in distinction relies on this).
  std::sort(covering.ranges.begin(), covering.ranges.end(),
            [](const DRange& a, const DRange& b) { return a.lo < b.lo; });
  std::vector<DRange> merged;
  merged.reserve(covering.ranges.size());
  for (const DRange& r : covering.ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  covering.ranges = std::move(merged);
  for (const DRange& r : covering.ranges) {
    covering.num_cells += r.hi - r.lo + 1;
  }
  return covering;
}

Covering CoverRect(const Curve2D& curve, const Rect& query,
                   const CoveringOptions& options) {
  return CoverRegion(curve, RectRegion(query), options);
}

bool CoveringContains(const Covering& covering, uint64_t d) {
  const auto it = std::upper_bound(
      covering.ranges.begin(), covering.ranges.end(), d,
      [](uint64_t value, const DRange& r) { return value < r.lo; });
  if (it == covering.ranges.begin()) return false;
  return d <= std::prev(it)->hi;
}

}  // namespace stix::geo
