#include "geo/covering.h"

#include <algorithm>

namespace stix::geo {
namespace {

// Emits the d-range of the aligned block with corner (x, y) and side 2^k.
// The quadtree-block property of both curves guarantees the range is the
// aligned interval of width 4^k containing any of the block's cells.
void EmitBlock(const Curve2D& curve, uint32_t x, uint32_t y, int k,
               std::vector<DRange>* out) {
  const uint64_t width = static_cast<uint64_t>(1) << (2 * k);
  const uint64_t base = curve.XyToD(x, y) & ~(width - 1);
  out->push_back(DRange{base, base + width - 1});
}

// Sorts and merges contiguous/overlapping ranges so consecutive cells become
// one interval (the paper's range-vs-$in distinction relies on this), then
// tallies num_cells.
void SortMergeCount(Covering* covering) {
  std::sort(covering->ranges.begin(), covering->ranges.end(),
            [](const DRange& a, const DRange& b) { return a.lo < b.lo; });
  std::vector<DRange> merged;
  merged.reserve(covering->ranges.size());
  for (const DRange& r : covering->ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  covering->ranges = std::move(merged);
  covering->num_cells = 0;
  for (const DRange& r : covering->ranges) {
    covering->num_cells += r.hi - r.lo + 1;
  }
}

// ---- Rectangles: exact descent in integer cell coordinates. ----
//
// The query rectangle is mapped to an inclusive cell span through the SAME
// clamped LonToX/LatToY the index key generator applies to documents, and
// the descent intersects aligned blocks with that span in pure integer
// arithmetic. Monotonicity of the coordinate mapping then guarantees: every
// point inside the query rect maps to a cell inside the span, so the
// covering can never miss a matching document — including points clamped in
// from outside the grid domain (antimeridian, poles, outside a dataset
// MBR), which land in the boundary cells the clamped span includes. The
// previous floating-point block-extent test could disagree with the key
// mapping by one cell at ulp-level boundaries and silently drop documents.

struct CellSpan {
  uint32_t x0, y0, x1, y1;  // inclusive
};

struct RectDescentState {
  const Curve2D* curve;
  CellSpan span;
  size_t max_ranges;
  std::vector<DRange>* out;
};

void DescendCells(const RectDescentState& s, uint32_t x, uint32_t y, int k) {
  const uint32_t size = static_cast<uint32_t>(1) << k;
  const uint32_t bx1 = x + size - 1;
  const uint32_t by1 = y + size - 1;
  if (x > s.span.x1 || bx1 < s.span.x0 || y > s.span.y1 || by1 < s.span.y0) {
    return;
  }
  const bool contained = x >= s.span.x0 && bx1 <= s.span.x1 &&
                         y >= s.span.y0 && by1 <= s.span.y1;
  if (contained || k == 0 ||
      (s.max_ranges > 0 && s.out->size() >= s.max_ranges)) {
    EmitBlock(*s.curve, x, y, k, s.out);
    return;
  }
  const uint32_t half = size / 2;
  DescendCells(s, x, y, k - 1);
  DescendCells(s, x + half, y, k - 1);
  DescendCells(s, x, y + half, k - 1);
  DescendCells(s, x + half, y + half, k - 1);
}

// ---- Arbitrary regions: geometric descent on block extents. ----

struct RegionDescentState {
  const Curve2D* curve;
  const Region* query;
  size_t max_ranges;
  std::vector<DRange>* out;
};

void DescendRegion(const RegionDescentState& s, uint32_t x, uint32_t y,
                   int k) {
  const uint32_t size = static_cast<uint32_t>(1) << k;
  const Rect block = s.curve->grid().BlockRect(x, y, size);
  if (!s.query->IntersectsRect(block)) return;
  if (s.query->ContainsRect(block) || k == 0 ||
      (s.max_ranges > 0 && s.out->size() >= s.max_ranges)) {
    EmitBlock(*s.curve, x, y, k, s.out);
    return;
  }
  const uint32_t half = size / 2;
  DescendRegion(s, x, y, k - 1);
  DescendRegion(s, x + half, y, k - 1);
  DescendRegion(s, x, y + half, k - 1);
  DescendRegion(s, x + half, y + half, k - 1);
}

}  // namespace

size_t Covering::NumSingletons() const {
  size_t n = 0;
  for (const DRange& r : ranges) {
    if (r.lo == r.hi) ++n;
  }
  return n;
}

Covering CoverRect(const Curve2D& curve, const Rect& query,
                   const CoveringOptions& options) {
  const GridMapping& grid = curve.grid();
  CellSpan span;
  span.x0 = grid.LonToX(std::min(query.lo.lon, query.hi.lon));
  span.x1 = grid.LonToX(std::max(query.lo.lon, query.hi.lon));
  span.y0 = grid.LatToY(std::min(query.lo.lat, query.hi.lat));
  span.y1 = grid.LatToY(std::max(query.lo.lat, query.hi.lat));
  Covering covering;
  RectDescentState state{&curve, span, options.max_ranges, &covering.ranges};
  DescendCells(state, 0, 0, curve.order());
  SortMergeCount(&covering);
  return covering;
}

Covering CoverRegion(const Curve2D& curve, const Region& region,
                     const CoveringOptions& options) {
  Rect rect;
  if (region.AsRect(&rect)) return CoverRect(curve, rect, options);
  Covering covering;
  RegionDescentState state{&curve, &region, options.max_ranges,
                           &covering.ranges};
  DescendRegion(state, 0, 0, curve.order());
  SortMergeCount(&covering);
  return covering;
}

bool CoveringContains(const Covering& covering, uint64_t d) {
  const auto it = std::upper_bound(
      covering.ranges.begin(), covering.ranges.end(), d,
      [](uint64_t value, const DRange& r) { return value < r.lo; });
  if (it == covering.ranges.begin()) return false;
  return d <= std::prev(it)->hi;
}

}  // namespace stix::geo
