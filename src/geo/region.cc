#include "geo/region.h"

#include <algorithm>
#include <cassert>

namespace stix::geo {
namespace {

double Cross(Point o, Point a, Point b) {
  return (a.lon - o.lon) * (b.lat - o.lat) -
         (a.lat - o.lat) * (b.lon - o.lon);
}

bool OnSegment(Point p, Point a, Point b) {
  if (Cross(a, b, p) != 0.0) return false;
  return p.lon >= std::min(a.lon, b.lon) && p.lon <= std::max(a.lon, b.lon) &&
         p.lat >= std::min(a.lat, b.lat) && p.lat <= std::max(a.lat, b.lat);
}

}  // namespace

bool SegmentsIntersect(Point a1, Point a2, Point b1, Point b2) {
  const double d1 = Cross(b1, b2, a1);
  const double d2 = Cross(b1, b2, a2);
  const double d3 = Cross(a1, a2, b1);
  const double d4 = Cross(a1, a2, b2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  return (d1 == 0 && OnSegment(a1, b1, b2)) ||
         (d2 == 0 && OnSegment(a2, b1, b2)) ||
         (d3 == 0 && OnSegment(b1, a1, a2)) ||
         (d4 == 0 && OnSegment(b2, a1, a2));
}

bool SegmentIntersectsRect(Point a, Point b, const Rect& r) {
  if (r.Contains(a) || r.Contains(b)) return true;
  const Point corners[4] = {
      {r.lo.lon, r.lo.lat}, {r.hi.lon, r.lo.lat},
      {r.hi.lon, r.hi.lat}, {r.lo.lon, r.hi.lat}};
  for (int e = 0; e < 4; ++e) {
    if (SegmentsIntersect(a, b, corners[e], corners[(e + 1) % 4])) {
      return true;
    }
  }
  return false;
}

PolylineRegion::PolylineRegion(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  assert(vertices_.size() >= 2 && "a polyline needs at least two vertices");
  bbox_.lo = bbox_.hi = vertices_.front();
  for (const Point& v : vertices_) {
    bbox_.lo.lon = std::min(bbox_.lo.lon, v.lon);
    bbox_.lo.lat = std::min(bbox_.lo.lat, v.lat);
    bbox_.hi.lon = std::max(bbox_.hi.lon, v.lon);
    bbox_.hi.lat = std::max(bbox_.hi.lat, v.lat);
  }
}

bool PolylineRegion::IntersectsRect(const Rect& r) const {
  if (!bbox_.Intersects(r)) return false;
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    if (SegmentIntersectsRect(vertices_[i], vertices_[i + 1], r)) return true;
  }
  return false;
}

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  assert(vertices_.size() >= 3 && "a polygon needs at least three vertices");
  bbox_.lo = bbox_.hi = vertices_.front();
  for (const Point& v : vertices_) {
    bbox_.lo.lon = std::min(bbox_.lo.lon, v.lon);
    bbox_.lo.lat = std::min(bbox_.lo.lat, v.lat);
    bbox_.hi.lon = std::max(bbox_.hi.lon, v.lon);
    bbox_.hi.lat = std::max(bbox_.hi.lat, v.lat);
  }
}

bool Polygon::Contains(Point p) const {
  if (!bbox_.Contains(p)) return false;
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    if (OnSegment(p, a, b)) return true;  // boundary counts as inside
    const bool crosses =
        (a.lat > p.lat) != (b.lat > p.lat) &&
        p.lon < (b.lon - a.lon) * (p.lat - a.lat) / (b.lat - a.lat) + a.lon;
    if (crosses) inside = !inside;
  }
  return inside;
}

bool Polygon::ContainsRect(const Rect& r) const {
  // All four corners inside and no polygon edge cutting through any rect
  // edge: for a simple polygon that is exact containment.
  const Point corners[4] = {
      {r.lo.lon, r.lo.lat}, {r.hi.lon, r.lo.lat},
      {r.hi.lon, r.hi.lat}, {r.lo.lon, r.hi.lat}};
  for (const Point& c : corners) {
    if (!Contains(c)) return false;
  }
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    for (int e = 0; e < 4; ++e) {
      if (SegmentsIntersect(vertices_[i], vertices_[j], corners[e],
                            corners[(e + 1) % 4])) {
        return false;
      }
    }
  }
  return true;
}

bool Polygon::IntersectsRect(const Rect& r) const {
  if (!bbox_.Intersects(r)) return false;
  // A corner of the rect inside the polygon, a vertex of the polygon inside
  // the rect, or crossing edges.
  const Point corners[4] = {
      {r.lo.lon, r.lo.lat}, {r.hi.lon, r.lo.lat},
      {r.hi.lon, r.hi.lat}, {r.lo.lon, r.hi.lat}};
  for (const Point& c : corners) {
    if (Contains(c)) return true;
  }
  for (const Point& v : vertices_) {
    if (r.Contains(v)) return true;
  }
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    for (int e = 0; e < 4; ++e) {
      if (SegmentsIntersect(vertices_[i], vertices_[j], corners[e],
                            corners[(e + 1) % 4])) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace stix::geo
