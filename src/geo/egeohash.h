#ifndef STIX_GEO_EGEOHASH_H_
#define STIX_GEO_EGEOHASH_H_

#include <vector>

#include "geo/curve.h"

namespace stix::geo {

/// The entropy-maximizing GeoHash (Arnold — see PAPERS.md): GeoHash's
/// Z-order bit interleaving kept as-is, but over per-axis *equi-depth* cell
/// boundaries fitted to a point sample instead of uniform splits. Each of
/// the 2^order columns (rows) then holds roughly the same number of sampled
/// points, which maximizes the entropy of the cell histogram — under skew,
/// hot regions get many small cells and empty oceans collapse into a few
/// wide ones, so a covering of a hot query rect selects far fewer false
///-positive keys than plain GeoHash.
///
/// In *cell* space this is still plain Morton order, so the quadtree-block
/// property holds (blocks are aligned d-intervals) and the standard descent
/// covering applies unchanged; only the coordinate->cell transform is
/// warped, via GridMapping's edge tables.
class EntropyGeoHashCurve : public Curve2D {
 public:
  /// Unfitted: uniform boundaries — behaves exactly like ZOrderCurve.
  EntropyGeoHashCurve(int order, const Rect& domain)
      : Curve2D(order, domain) {}

  /// Fitted: equi-depth boundaries from `sample` (points outside `domain`
  /// clamp to it first). An empty sample degenerates to uniform boundaries.
  EntropyGeoHashCurve(int order, const Rect& domain,
                      const std::vector<Point>& sample)
      : Curve2D(FitMapping(order, domain, sample)) {}

  uint64_t XyToD(uint32_t x, uint32_t y) const override;
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const override;
  const char* name() const override { return "egeohash"; }

  /// Equi-depth mapping fit: per axis, sorts the sample's (clamped)
  /// coordinates and places boundary i at the i/grid_size quantile,
  /// de-duplicated into a monotone edge table. Exposed so callers (and the
  /// refit path) can fit once and inspect the result.
  static GridMapping FitMapping(int order, const Rect& domain,
                                const std::vector<Point>& sample);
};

}  // namespace stix::geo

#endif  // STIX_GEO_EGEOHASH_H_
