#ifndef STIX_GEO_REGION_H_
#define STIX_GEO_REGION_H_

#include <vector>

#include "geo/geo.h"

namespace stix::geo {

/// A 2D query region, as the covering algorithm sees it: it only ever asks
/// how the region relates to grid-aligned rectangles. Rectangles and
/// polygons implement this; the paper's queries are rectangles, polygon
/// support is its "more complex data types" future-work item.
class Region {
 public:
  virtual ~Region() = default;

  /// True iff the region fully contains the rectangle.
  virtual bool ContainsRect(const Rect& r) const = 0;

  /// True iff the region and the rectangle share at least a boundary point.
  /// May err on the side of true (a false positive only costs extra cells).
  virtual bool IntersectsRect(const Rect& r) const = 0;

  /// Bounding box (prunes the covering descent early).
  virtual Rect BoundingBox() const = 0;

  /// When the region is exactly an axis-aligned rectangle, writes it to
  /// *out and returns true. CoverRegion uses this to dispatch rectangles to
  /// the exact integer-grid covering (see covering.h), which agrees
  /// bit-for-bit with the cell mapping document keys use — the
  /// floating-point descent is kept only for genuinely curved regions.
  virtual bool AsRect(Rect* out) const {
    (void)out;
    return false;
  }
};

/// Rectangle region (the paper's $geoWithin $box).
class RectRegion : public Region {
 public:
  explicit RectRegion(const Rect& rect) : rect_(rect) {}

  bool ContainsRect(const Rect& r) const override {
    return rect_.ContainsRect(r);
  }
  bool IntersectsRect(const Rect& r) const override {
    return rect_.Intersects(r);
  }
  Rect BoundingBox() const override { return rect_; }
  bool AsRect(Rect* out) const override {
    *out = rect_;
    return true;
  }

 private:
  Rect rect_;
};

/// A simple (non-self-intersecting) polygon with vertices in lon/lat,
/// closed implicitly (last vertex connects back to the first). Point
/// membership uses ray casting; boundary points count as inside.
class Polygon : public Region {
 public:
  /// At least three vertices. Winding order does not matter.
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }

  /// Point-in-polygon (ray casting, boundary-inclusive).
  bool Contains(Point p) const;

  bool ContainsRect(const Rect& r) const override;
  bool IntersectsRect(const Rect& r) const override;
  Rect BoundingBox() const override { return bbox_; }

 private:
  std::vector<Point> vertices_;
  Rect bbox_;
};

/// True iff segments (a1,a2) and (b1,b2) intersect (touching counts).
bool SegmentsIntersect(Point a1, Point a2, Point b1, Point b2);

/// True iff the segment (a, b) intersects the rectangle (touching counts).
bool SegmentIntersectsRect(Point a, Point b, const Rect& r);

/// A polyline (GeoJSON LineString): a chain of >= 2 vertices. As a Region
/// it never *contains* area, so coverings descend to the leaf cells the
/// line passes through — exactly the cell set a multikey 2dsphere index
/// stores for it.
class PolylineRegion : public Region {
 public:
  explicit PolylineRegion(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }

  bool ContainsRect(const Rect&) const override { return false; }
  bool IntersectsRect(const Rect& r) const override;
  Rect BoundingBox() const override { return bbox_; }

 private:
  std::vector<Point> vertices_;
  Rect bbox_;
};

}  // namespace stix::geo

#endif  // STIX_GEO_REGION_H_
