#include "geo/hilbert.h"

namespace stix::geo {
namespace {

// Rotates/flips a quadrant so the curve orientation is correct (classic
// iterative Hilbert transform).
void Rotate(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertCurve::XyToD(uint32_t x, uint32_t y) const {
  const uint32_t n = grid().grid_size();
  uint64_t d = 0;
  for (uint32_t s = n / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  const uint32_t n = grid().grid_size();
  uint32_t rx, ry;
  uint64_t t = d;
  *x = *y = 0;
  for (uint32_t s = 1; s < n; s *= 2) {
    rx = 1 & static_cast<uint32_t>(t / 2);
    ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

}  // namespace stix::geo
