#include "geo/geohash.h"

#include <cassert>

namespace stix::geo {
namespace {

constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Index(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}

}  // namespace

GeoHash::GeoHash(int total_bits)
    : total_bits_(total_bits), curve_(total_bits / 2, GlobeRect()) {
  assert(total_bits >= 2 && total_bits <= 32 && total_bits % 2 == 0 &&
         "geohash bits must be even and in [2, 32]");
}

uint64_t GeoHash::Encode(double lon, double lat) const {
  return curve_.PointToD(lon, lat);
}

Rect GeoHash::CellRect(uint64_t hash) const {
  uint32_t x, y;
  curve_.DToXy(hash, &x, &y);
  return curve_.grid().BlockRect(x, y, 1);
}

std::string GeoHashBase32(double lon, double lat, int precision) {
  // Classic geohash: alternate interval-halving bits starting with longitude,
  // packed 5 bits per base32 character.
  double lon_lo = -180.0, lon_hi = 180.0;
  double lat_lo = -90.0, lat_hi = 90.0;
  std::string out;
  out.reserve(precision);
  int bit = 0;
  int current = 0;
  bool even = true;  // even bit -> longitude
  while (static_cast<int>(out.size()) < precision) {
    if (even) {
      const double mid = (lon_lo + lon_hi) / 2;
      if (lon >= mid) {
        current = (current << 1) | 1;
        lon_lo = mid;
      } else {
        current <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2;
      if (lat >= mid) {
        current = (current << 1) | 1;
        lat_lo = mid;
      } else {
        current <<= 1;
        lat_hi = mid;
      }
    }
    even = !even;
    if (++bit == 5) {
      out += kBase32[current];
      bit = 0;
      current = 0;
    }
  }
  return out;
}

bool GeoHashBase32Decode(const std::string& hash, double* lon, double* lat) {
  double lon_lo = -180.0, lon_hi = 180.0;
  double lat_lo = -90.0, lat_hi = 90.0;
  bool even = true;
  for (char c : hash) {
    const int idx = Base32Index(c);
    if (idx < 0) return false;
    for (int bit = 4; bit >= 0; --bit) {
      const int b = (idx >> bit) & 1;
      if (even) {
        const double mid = (lon_lo + lon_hi) / 2;
        if (b) {
          lon_lo = mid;
        } else {
          lon_hi = mid;
        }
      } else {
        const double mid = (lat_lo + lat_hi) / 2;
        if (b) {
          lat_lo = mid;
        } else {
          lat_hi = mid;
        }
      }
      even = !even;
    }
  }
  *lon = (lon_lo + lon_hi) / 2;
  *lat = (lat_lo + lat_hi) / 2;
  return true;
}

}  // namespace stix::geo
