#ifndef STIX_GEO_HILBERT_H_
#define STIX_GEO_HILBERT_H_

#include "geo/curve.h"

namespace stix::geo {

/// The Hilbert space-filling curve — the paper's 1D mapping of choice, picked
/// for its clustering properties (Moon et al., TKDE 2001): consecutive d
/// values are always edge-adjacent cells, so nearby points get nearby
/// hilbertIndex values.
class HilbertCurve : public Curve2D {
 public:
  /// `order` bits per dimension; `domain` is the geographic extent the grid
  /// spans (globe for `hil`, dataset MBR for `hil*`).
  HilbertCurve(int order, const Rect& domain) : Curve2D(order, domain) {}

  uint64_t XyToD(uint32_t x, uint32_t y) const override;
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const override;
  const char* name() const override { return "hilbert"; }
};

}  // namespace stix::geo

#endif  // STIX_GEO_HILBERT_H_
