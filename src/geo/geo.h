#ifndef STIX_GEO_GEO_H_
#define STIX_GEO_GEO_H_

#include <algorithm>
#include <cmath>

namespace stix::geo {

/// A longitude/latitude position in degrees (WGS84 axis order lon, lat —
/// GeoJSON order).
struct Point {
  double lon = 0.0;
  double lat = 0.0;
};

/// An axis-aligned lon/lat rectangle, closed on all sides. This is the query
/// shape of the paper ($geoWithin with a box) and the cell shape of grids.
struct Rect {
  Point lo;  ///< South-west corner (min lon, min lat).
  Point hi;  ///< North-east corner (max lon, max lat).

  bool Contains(Point p) const {
    return p.lon >= lo.lon && p.lon <= hi.lon && p.lat >= lo.lat &&
           p.lat <= hi.lat;
  }

  bool ContainsRect(const Rect& r) const {
    return r.lo.lon >= lo.lon && r.hi.lon <= hi.lon && r.lo.lat >= lo.lat &&
           r.hi.lat <= hi.lat;
  }

  bool Intersects(const Rect& r) const {
    return !(r.hi.lon < lo.lon || r.lo.lon > hi.lon || r.hi.lat < lo.lat ||
             r.lo.lat > hi.lat);
  }

  double width() const { return hi.lon - lo.lon; }
  double height() const { return hi.lat - lo.lat; }

  /// Degenerate-safe area in square degrees.
  double AreaDeg2() const {
    return std::max(0.0, width()) * std::max(0.0, height());
  }
};

/// The whole-globe domain used by MongoDB's 2dsphere hashes and by the
/// paper's `hil` approach.
inline Rect GlobeRect() { return Rect{{-180.0, -90.0}, {180.0, 90.0}}; }

/// Approximate area of a lon/lat rectangle in km^2 (spherical earth). Used
/// only for reporting, mirroring the paper's "covers 526 km^2" statements.
double RectAreaKm2(const Rect& r);

/// Great-circle distance between two points in meters (haversine).
double HaversineMeters(Point a, Point b);

/// Axis-aligned rectangle of half-width `radius_m` meters around a center
/// (degrees converted at the center's latitude; clamped to valid lon/lat).
Rect RectAroundPoint(Point center, double radius_m);

}  // namespace stix::geo

#endif  // STIX_GEO_GEO_H_
