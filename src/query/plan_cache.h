#ifndef STIX_QUERY_PLAN_CACHE_H_
#define STIX_QUERY_PLAN_CACHE_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "query/expression.h"

namespace stix::query {

/// Canonical shape of a query: the predicate structure and paths with the
/// constants erased — two spatio-temporal range queries with different
/// rectangles/windows share a shape. This is MongoDB's plan-cache key.
std::string QueryShape(const MatchExpr& expr);

/// One remembered plan decision: the winning index and how much work the
/// winner needed when it was cached. The works figure drives replanning: a
/// later execution of the same shape that blows well past it (MongoDB's
/// 10x eviction ratio) abandons the cached plan and re-races — this is what
/// lets a shape cached from a *small* rectangle recover when a *big*
/// rectangle of the same shape arrives (the paper's Table 7 shows exactly
/// such per-query index flips).
struct PlanCacheEntry {
  std::string index_name;
  uint64_t works = 0;
};

/// Maps query shapes to the plan the multi-planner last chose for them, so
/// repeated (warm) executions skip the plan race — without this, every run
/// would pay the losing candidates' trial work, which MongoDB only pays
/// once per shape. One cache per shard, as plan choice is data-dependent
/// (the paper's Table 7 shows different nodes choosing different indexes).
///
/// Thread-safe: concurrent cursors on one shard share the shard's cache, so
/// every operation locks and Lookup returns the entry by value (a pointer
/// into the map could be evicted under the caller's feet).
class PlanCache {
 public:
  /// Cached entry for this shape, or nullopt. Hit/miss feeds the
  /// server-wide registry ("plan_cache.hits"/"plan_cache.misses").
  std::optional<PlanCacheEntry> Lookup(const std::string& shape) const {
    STIX_METRIC_COUNTER(hits, "plan_cache.hits");
    STIX_METRIC_COUNTER(misses, "plan_cache.misses");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(shape);
    if (it == entries_.end()) {
      misses.Increment();
      return std::nullopt;
    }
    hits.Increment();
    return it->second;
  }

  void Store(const std::string& shape, std::string index_name,
             uint64_t works) {
    STIX_METRIC_COUNTER(stores, "plan_cache.stores");
    stores.Increment();
    std::lock_guard<std::mutex> lock(mu_);
    entries_[shape] = PlanCacheEntry{std::move(index_name), works};
  }

  void Evict(const std::string& shape) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.erase(shape) > 0) {
      STIX_METRIC_COUNTER(evictions, "plan_cache.evictions");
      evictions.Increment();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  /// Drops every cached decision because the underlying data distribution
  /// changed (chunk migration, statistics rebuild): the works figures and
  /// index choices were measured against data that is no longer there.
  /// Counts "planner.cache_invalidations" only when entries were dropped.
  void InvalidateAll() {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.empty()) return;
    STIX_METRIC_COUNTER(invalidations, "planner.cache_invalidations");
    invalidations.Increment();
    entries_.clear();
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, PlanCacheEntry> entries_;
};

}  // namespace stix::query

#endif  // STIX_QUERY_PLAN_CACHE_H_
