#ifndef STIX_QUERY_PLAN_CACHE_H_
#define STIX_QUERY_PLAN_CACHE_H_

#include <string>
#include <unordered_map>

#include "query/expression.h"

namespace stix::query {

/// Canonical shape of a query: the predicate structure and paths with the
/// constants erased — two spatio-temporal range queries with different
/// rectangles/windows share a shape. This is MongoDB's plan-cache key.
std::string QueryShape(const MatchExpr& expr);

/// One remembered plan decision: the winning index and how much work the
/// winner needed when it was cached. The works figure drives replanning: a
/// later execution of the same shape that blows well past it (MongoDB's
/// 10x eviction ratio) abandons the cached plan and re-races — this is what
/// lets a shape cached from a *small* rectangle recover when a *big*
/// rectangle of the same shape arrives (the paper's Table 7 shows exactly
/// such per-query index flips).
struct PlanCacheEntry {
  std::string index_name;
  uint64_t works = 0;
};

/// Maps query shapes to the plan the multi-planner last chose for them, so
/// repeated (warm) executions skip the plan race — without this, every run
/// would pay the losing candidates' trial work, which MongoDB only pays
/// once per shape. One cache per shard, as plan choice is data-dependent
/// (the paper's Table 7 shows different nodes choosing different indexes).
class PlanCache {
 public:
  /// Cached entry for this shape, or nullptr.
  const PlanCacheEntry* Lookup(const std::string& shape) const {
    const auto it = entries_.find(shape);
    return it == entries_.end() ? nullptr : &it->second;
  }

  void Store(const std::string& shape, std::string index_name,
             uint64_t works) {
    entries_[shape] = PlanCacheEntry{std::move(index_name), works};
  }

  void Evict(const std::string& shape) { entries_.erase(shape); }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, PlanCacheEntry> entries_;
};

}  // namespace stix::query

#endif  // STIX_QUERY_PLAN_CACHE_H_
