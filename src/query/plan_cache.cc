#include "query/plan_cache.h"

#include <algorithm>
#include <vector>

namespace stix::query {
namespace {

void AppendShape(const MatchExpr& expr, std::string* out) {
  switch (expr.kind()) {
    case MatchExpr::Kind::kCmp: {
      const auto& cmp = static_cast<const CmpExpr&>(expr);
      const char* op = "?";
      switch (cmp.op()) {
        case CmpOp::kEq:
          op = "eq";
          break;
        case CmpOp::kGt:
        case CmpOp::kGte:
          op = "gte";  // bound direction matters, width does not
          break;
        case CmpOp::kLt:
        case CmpOp::kLte:
          op = "lte";
          break;
      }
      *out += op;
      *out += '(';
      *out += cmp.path();
      *out += ')';
      break;
    }
    case MatchExpr::Kind::kIn:
      *out += "in(" + static_cast<const InExpr&>(expr).path() + ")";
      break;
    case MatchExpr::Kind::kRangeSet:
      *out += "rset(" + static_cast<const RangeSetExpr&>(expr).path() + ")";
      break;
    case MatchExpr::Kind::kGeoWithinBox:
      *out += "geo(" + static_cast<const GeoWithinBoxExpr&>(expr).path() + ")";
      break;
    case MatchExpr::Kind::kGeoWithinPolygon:
      *out += "geopoly(" +
              static_cast<const GeoWithinPolygonExpr&>(expr).path() + ")";
      break;
    case MatchExpr::Kind::kGeoIntersectsBox:
      *out += "geoisect(" +
              static_cast<const GeoIntersectsBoxExpr&>(expr).path() + ")";
      break;
    case MatchExpr::Kind::kAnd:
    case MatchExpr::Kind::kOr: {
      const auto& children =
          expr.kind() == MatchExpr::Kind::kAnd
              ? static_cast<const AndExpr&>(expr).children()
              : static_cast<const OrExpr&>(expr).children();
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const ExprPtr& child : children) {
        std::string part;
        AppendShape(*child, &part);
        parts.push_back(std::move(part));
      }
      // Order-insensitive and deduplicated: {$or: [10 ranges]} and
      // {$or: [12 ranges]} on the same path share a shape.
      std::sort(parts.begin(), parts.end());
      parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
      *out += expr.kind() == MatchExpr::Kind::kAnd ? "and[" : "or[";
      for (const std::string& part : parts) {
        *out += part;
        *out += ',';
      }
      *out += ']';
      break;
    }
  }
}

}  // namespace

std::string QueryShape(const MatchExpr& expr) {
  std::string shape;
  AppendShape(expr, &shape);
  return shape;
}

}  // namespace stix::query
