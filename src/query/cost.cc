#include "query/cost.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace stix::query {
namespace {

// Smoothing constant for the decisiveness test: second + s >= margin *
// (best + s). Keeps a 2-key vs 5-key difference from looking decisive
// while a 100-key vs 1000-key one still is.
constexpr double kCostSmoothing = 10.0;

std::optional<int64_t> BoundValue(const bson::Value& v) {
  switch (v.type()) {
    case bson::Type::kDateTime:
      return v.AsDateTime();
    case bson::Type::kInt64:
      return v.AsInt64();
    case bson::Type::kInt32:
      return static_cast<int64_t>(v.AsInt32());
    default:
      return std::nullopt;
  }
}

// The histogram path a constrained index field reads from: geo fields
// estimate over the GeoHash-cell histogram (the value space their keys
// store), everything else over the histogram of the field's own path.
const char* HistogramPath(const std::string& field_path, bool is_geo) {
  if (is_geo) return stats::ShardStatistics::kLocationPath;
  return field_path.c_str();
}

// Interval set of one field as int64 pairs; nullopt when any bound is not
// int64-comparable (the cost model only understands the schema's date /
// hilbertIndex / geo-cell keys).
std::optional<std::vector<std::pair<int64_t, int64_t>>> IntervalRanges(
    const index::FieldBounds& fb) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(fb.intervals.size());
  for (const index::ValueInterval& iv : fb.intervals) {
    const auto lo = BoundValue(iv.lo);
    const auto hi = BoundValue(iv.hi);
    if (!lo || !hi) return std::nullopt;
    ranges.emplace_back(*lo, *hi);
  }
  return ranges;
}

}  // namespace

PlanEstimate EstimatePlan(const CandidatePlan& plan,
                          const stats::ShardStatistics& stats) {
  PlanEstimate est;
  const double n = static_cast<double>(stats.total_docs());
  const PlanAccess& access = plan.access;

  if (access.collscan) {
    est.valid = true;
    est.docs = n;
    est.cost = n;
    if (access.bucketed) est.cost += n * stats.avg_points_per_doc();
    return est;
  }

  // IXSCAN: fold per-field selectivities over the bounds, field order as
  // in the index. `keys_frac` narrows only while every preceding field's
  // intervals are all points (direct-seek prefixes); `docs_frac` narrows
  // on every constrained field (per-key checks run before FETCH).
  double keys_frac = 1.0;
  double docs_frac = 1.0;
  double seeks = 0.0;
  bool prefix_all_points = true;
  for (size_t i = 0; i < access.bounds.fields.size(); ++i) {
    const index::FieldBounds& fb = access.bounds.fields[i];
    if (fb.full_range) {
      prefix_all_points = false;
      continue;
    }
    const auto ranges = IntervalRanges(fb);
    if (!ranges) return est;  // non-numeric bounds: cannot estimate
    const bool is_geo =
        i < access.field_is_geo.size() && access.field_is_geo[i];
    const std::string& path =
        i < access.field_paths.size() ? access.field_paths[i] : std::string();
    const double in_range =
        stats.EstimateIntervalSum(HistogramPath(path, is_geo), *ranges);
    if (in_range < 0.0) return est;  // no histogram for a constrained path
    const double sel = n > 0.0 ? std::min(1.0, in_range / n) : 0.0;
    docs_frac *= sel;
    if (i == 0 || prefix_all_points) {
      keys_frac *= sel;
      if (i == 0) seeks = static_cast<double>(ranges->size());
    }
    for (const index::ValueInterval& iv : fb.intervals) {
      if (!iv.IsPoint()) {
        prefix_all_points = false;
        break;
      }
    }
  }

  est.valid = true;
  est.keys = n * keys_frac + seeks;
  est.docs = n * docs_frac;
  est.cost = est.keys + est.docs;
  if (access.bucketed) est.cost += est.docs * stats.avg_points_per_doc();
  return est;
}

PlanChoice ChoosePlan(const std::vector<CandidatePlan>& candidates,
                      const stats::ShardStatistics& stats,
                      double confidence_margin) {
  PlanChoice choice;
  choice.estimates.reserve(candidates.size());
  bool all_valid = true;
  for (const CandidatePlan& plan : candidates) {
    choice.estimates.push_back(EstimatePlan(plan, stats));
    all_valid = all_valid && choice.estimates.back().valid;
  }
  if (!all_valid || candidates.empty()) return choice;
  if (candidates.size() == 1) {
    choice.winner = 0;
    return choice;
  }
  int best = 0;
  int second = -1;
  for (int i = 1; i < static_cast<int>(choice.estimates.size()); ++i) {
    if (choice.estimates[i].cost < choice.estimates[best].cost) {
      second = best;
      best = i;
    } else if (second < 0 || choice.estimates[i].cost <
                                 choice.estimates[second].cost) {
      second = i;
    }
  }
  const double b = choice.estimates[best].cost + kCostSmoothing;
  const double s = choice.estimates[second].cost + kCostSmoothing;
  if (s >= confidence_margin * b) choice.winner = best;
  return choice;
}

}  // namespace stix::query
