#include "query/expression.h"

#include <algorithm>

#include "bson/json_writer.h"

namespace stix::query {
namespace {

bool SameTypeBracket(const bson::Value& a, const bson::Value& b) {
  return bson::CanonicalTypeRank(a.type()) ==
         bson::CanonicalTypeRank(b.type());
}

const char* OpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "$eq";
    case CmpOp::kGt:
      return "$gt";
    case CmpOp::kGte:
      return "$gte";
    case CmpOp::kLt:
      return "$lt";
    case CmpOp::kLte:
      return "$lte";
  }
  return "?";
}

}  // namespace

bool CmpExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  if (v == nullptr || !SameTypeBracket(*v, value_)) return false;
  const int c = Compare(*v, value_);
  switch (op_) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGte:
      return c >= 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLte:
      return c <= 0;
  }
  return false;
}

std::string CmpExpr::DebugString() const {
  return "{" + path_ + ": {" + OpName(op_) + ": " + bson::ToJson(value_) +
         "}}";
}

bool InExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  if (v == nullptr) return false;
  for (const bson::Value& candidate : values_) {
    if (SameTypeBracket(*v, candidate) && Compare(*v, candidate) == 0) {
      return true;
    }
  }
  return false;
}

std::string InExpr::DebugString() const {
  std::string out = "{" + path_ + ": {$in: [";
  bool first = true;
  for (const bson::Value& v : values_) {
    if (!first) out += ", ";
    first = false;
    out += bson::ToJson(v);
  }
  return out + "]}}";
}

bool AndExpr::Matches(const bson::Document& doc) const {
  for (const ExprPtr& child : children_) {
    if (!child->Matches(doc)) return false;
  }
  return true;
}

std::string AndExpr::DebugString() const {
  std::string out = "{$and: [";
  bool first = true;
  for (const ExprPtr& child : children_) {
    if (!first) out += ", ";
    first = false;
    out += child->DebugString();
  }
  return out + "]}";
}

bool OrExpr::Matches(const bson::Document& doc) const {
  for (const ExprPtr& child : children_) {
    if (child->Matches(doc)) return true;
  }
  return false;
}

std::string OrExpr::DebugString() const {
  std::string out = "{$or: [";
  bool first = true;
  for (const ExprPtr& child : children_) {
    if (!first) out += ", ";
    first = false;
    out += child->DebugString();
  }
  return out + "]}";
}

bool GeoWithinBoxExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  double lon, lat;
  if (v == nullptr || !bson::ExtractGeoJsonPoint(*v, &lon, &lat)) {
    return false;
  }
  return box_.Contains(geo::Point{lon, lat});
}

bool GeoWithinPolygonExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  double lon, lat;
  if (v == nullptr || !bson::ExtractGeoJsonPoint(*v, &lon, &lat)) {
    return false;
  }
  return polygon_.Contains(geo::Point{lon, lat});
}

std::string GeoWithinPolygonExpr::DebugString() const {
  std::string out = "{" + path_ + ": {$geoWithin: {$polygon: [";
  for (size_t i = 0; i < polygon_.vertices().size(); ++i) {
    if (i > 0) out += ", ";
    out += "[" + std::to_string(polygon_.vertices()[i].lon) + ", " +
           std::to_string(polygon_.vertices()[i].lat) + "]";
  }
  return out + "]}}}";
}

ExprPtr MakeGeoWithinPolygon(std::string path, geo::Polygon polygon) {
  return std::make_shared<GeoWithinPolygonExpr>(std::move(path),
                                                std::move(polygon));
}

bool GeoIntersectsBoxExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  if (v == nullptr) return false;
  double lon, lat;
  if (bson::ExtractGeoJsonPoint(*v, &lon, &lat)) {
    return box_.Contains(geo::Point{lon, lat});
  }
  std::vector<std::pair<double, double>> line;
  if (bson::ExtractGeoJsonLineString(*v, &line)) {
    for (size_t i = 0; i + 1 < line.size(); ++i) {
      if (geo::SegmentIntersectsRect(
              geo::Point{line[i].first, line[i].second},
              geo::Point{line[i + 1].first, line[i + 1].second}, box_)) {
        return true;
      }
    }
  }
  return false;
}

std::string GeoIntersectsBoxExpr::DebugString() const {
  return "{" + path_ + ": {$geoIntersects: {$box: [[" +
         std::to_string(box_.lo.lon) + ", " + std::to_string(box_.lo.lat) +
         "], [" + std::to_string(box_.hi.lon) + ", " +
         std::to_string(box_.hi.lat) + "]]}}}";
}

ExprPtr MakeGeoIntersectsBox(std::string path, geo::Rect box) {
  return std::make_shared<GeoIntersectsBoxExpr>(std::move(path), box);
}

std::string GeoWithinBoxExpr::DebugString() const {
  return "{" + path_ + ": {$geoWithin: {$box: [[" +
         std::to_string(box_.lo.lon) + ", " + std::to_string(box_.lo.lat) +
         "], [" + std::to_string(box_.hi.lon) + ", " +
         std::to_string(box_.hi.lat) + "]]}}}";
}

bool RangeSetExpr::Matches(const bson::Document& doc) const {
  const bson::Value* v = doc.GetPath(path_);
  if (v == nullptr) return false;
  // First range with hi >= v; inside iff its lo <= v.
  const auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), *v,
      [](const Range& r, const bson::Value& probe) {
        return Compare(r.hi, probe) < 0;
      });
  if (it == ranges_.end()) return false;
  return SameTypeBracket(*v, it->lo) && Compare(it->lo, *v) <= 0 &&
         SameTypeBracket(*v, it->hi);
}

std::string RangeSetExpr::DebugString() const {
  // Summarised rendering: the full $or would be thousands of arms.
  size_t singles = 0;
  for (const Range& r : ranges_) singles += Compare(r.lo, r.hi) == 0;
  std::string out = "{$or: [" + path_ + ": " +
                    std::to_string(ranges_.size() - singles) + " ranges + " +
                    std::to_string(singles) + " $in values";
  if (!ranges_.empty()) {
    out += ", e.g. [" + bson::ToJson(ranges_.front().lo) + ".." +
           bson::ToJson(ranges_.front().hi) + "]";
  }
  return out + "]}";
}

ExprPtr MakeRangeSet(std::string path,
                     std::vector<RangeSetExpr::Range> ranges) {
  return std::make_shared<RangeSetExpr>(std::move(path), std::move(ranges));
}

ExprPtr MakeCmp(std::string path, CmpOp op, bson::Value value) {
  return std::make_shared<CmpExpr>(std::move(path), op, std::move(value));
}

ExprPtr MakeIn(std::string path, std::vector<bson::Value> values) {
  return std::make_shared<InExpr>(std::move(path), std::move(values));
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  return std::make_shared<AndExpr>(std::move(children));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  return std::make_shared<OrExpr>(std::move(children));
}

ExprPtr MakeGeoWithinBox(std::string path, geo::Rect box) {
  return std::make_shared<GeoWithinBoxExpr>(std::move(path), box);
}

ExprPtr MakeRange(const std::string& path, bson::Value lo, bson::Value hi) {
  return MakeAnd({MakeCmp(path, CmpOp::kGte, std::move(lo)),
                  MakeCmp(path, CmpOp::kLte, std::move(hi))});
}

}  // namespace stix::query
