#include "query/aggregate.h"

#include <algorithm>
#include <map>

#include "keystring/keystring.h"

namespace stix::query {
namespace {

std::vector<bson::Document> ApplyMatch(std::vector<bson::Document> docs,
                                       const MatchStage& stage) {
  std::vector<bson::Document> out;
  out.reserve(docs.size());
  for (bson::Document& doc : docs) {
    if (stage.expr->Matches(doc)) out.push_back(std::move(doc));
  }
  return out;
}

std::vector<bson::Document> ApplyProject(std::vector<bson::Document> docs,
                                         const ProjectStage& stage) {
  std::vector<bson::Document> out;
  out.reserve(docs.size());
  for (const bson::Document& doc : docs) {
    bson::Document projected;
    for (const std::string& field : stage.fields) {
      const bson::Value* v = doc.GetPath(field);
      if (v != nullptr) projected.Append(field, *v);
    }
    out.push_back(std::move(projected));
  }
  return out;
}

std::vector<bson::Document> ApplySort(std::vector<bson::Document> docs,
                                      const SortStage& stage) {
  std::stable_sort(
      docs.begin(), docs.end(),
      [&](const bson::Document& a, const bson::Document& b) {
        const bson::Value* va = a.GetPath(stage.path);
        const bson::Value* vb = b.GetPath(stage.path);
        const bson::Value null_value;
        const int c = Compare(va != nullptr ? *va : null_value,
                              vb != nullptr ? *vb : null_value);
        return stage.ascending ? c < 0 : c > 0;
      });
  return docs;
}

struct GroupAccState {
  double sum = 0;
  uint64_t count = 0;         // docs contributing to sum/avg
  uint64_t group_count = 0;   // docs in the group (for kCount)
  bool has_minmax = false;
  bson::Value min, max;
};

Result<std::vector<bson::Document>> ApplyGroup(
    const std::vector<bson::Document>& docs, const GroupStage& stage) {
  struct GroupData {
    bson::Value key;
    std::vector<GroupAccState> accs;
  };
  // Keyed by KeyString of the group key for deterministic ordering.
  std::map<std::string, GroupData> groups;

  for (const bson::Document& doc : docs) {
    bson::Value key;  // null for missing / single-group
    if (!stage.key_path.empty()) {
      const bson::Value* v = doc.GetPath(stage.key_path);
      if (v != nullptr) key = *v;
    }
    const std::string group_id = keystring::Encode(key);
    GroupData& group = groups[group_id];
    if (group.accs.empty()) {
      group.key = key;
      group.accs.resize(stage.accumulators.size());
    }
    for (size_t i = 0; i < stage.accumulators.size(); ++i) {
      const Accumulator& acc = stage.accumulators[i];
      GroupAccState& state = group.accs[i];
      ++state.group_count;
      if (acc.op == AccumulatorOp::kCount) continue;
      const bson::Value* v = doc.GetPath(acc.input_path);
      if (v == nullptr) continue;
      switch (acc.op) {
        case AccumulatorOp::kSum:
        case AccumulatorOp::kAvg:
          if (v->IsNumber()) {
            state.sum += v->NumberAsDouble();
            ++state.count;
          }
          break;
        case AccumulatorOp::kMin:
        case AccumulatorOp::kMax:
          if (!state.has_minmax) {
            state.min = state.max = *v;
            state.has_minmax = true;
          } else {
            if (Compare(*v, state.min) < 0) state.min = *v;
            if (Compare(*v, state.max) > 0) state.max = *v;
          }
          break;
        case AccumulatorOp::kCount:
          break;
      }
    }
  }

  std::vector<bson::Document> out;
  out.reserve(groups.size());
  for (auto& [group_id, group] : groups) {
    bson::Document doc;
    doc.Append("_id", group.key);
    for (size_t i = 0; i < stage.accumulators.size(); ++i) {
      const Accumulator& acc = stage.accumulators[i];
      const GroupAccState& state = group.accs[i];
      switch (acc.op) {
        case AccumulatorOp::kCount:
          doc.Append(acc.output_name,
                     bson::Value::Int64(
                         static_cast<int64_t>(state.group_count)));
          break;
        case AccumulatorOp::kSum:
          doc.Append(acc.output_name, bson::Value::Double(state.sum));
          break;
        case AccumulatorOp::kAvg:
          doc.Append(acc.output_name,
                     state.count == 0
                         ? bson::Value::Null()
                         : bson::Value::Double(
                               state.sum /
                               static_cast<double>(state.count)));
          break;
        case AccumulatorOp::kMin:
          doc.Append(acc.output_name,
                     state.has_minmax ? state.min : bson::Value::Null());
          break;
        case AccumulatorOp::kMax:
          doc.Append(acc.output_name,
                     state.has_minmax ? state.max : bson::Value::Null());
          break;
      }
    }
    out.push_back(std::move(doc));
  }
  return out;
}

Result<std::vector<bson::Document>> ApplyBucketAuto(
    const std::vector<bson::Document>& docs, const BucketAutoStage& stage) {
  if (stage.buckets < 1) {
    return Status::InvalidArgument("$bucketAuto needs at least one bucket");
  }
  std::vector<bson::Value> values;
  values.reserve(docs.size());
  for (const bson::Document& doc : docs) {
    const bson::Value* v = doc.GetPath(stage.path);
    if (v != nullptr) values.push_back(*v);
  }
  if (values.empty()) {
    return Status::NotFound("$bucketAuto found no values at path '" +
                            stage.path + "'");
  }
  std::sort(values.begin(), values.end(),
            [](const bson::Value& a, const bson::Value& b) {
              return Compare(a, b) < 0;
            });

  std::vector<bson::Document> out;
  const size_t n = values.size();
  const size_t buckets = std::min<size_t>(stage.buckets, n);
  size_t start = 0;
  for (size_t b = 0; b < buckets && start < n; ++b) {
    size_t end = n * (b + 1) / buckets;
    if (end <= start) end = start + 1;
    // MongoDB keeps equal values in one bucket: extend past duplicates.
    while (end < n && Compare(values[end - 1], values[end]) == 0) ++end;

    bson::Document id;
    id.Append("min", values[start]);
    // Exclusive upper bound = next bucket's first value; the last bucket's
    // max is the overall max (inclusive), as $bucketAuto reports.
    id.Append("max", end < n ? values[end] : values[n - 1]);
    bson::Document doc;
    doc.Append("_id", bson::Value::MakeDocument(std::move(id)));
    doc.Append("count",
               bson::Value::Int64(static_cast<int64_t>(end - start)));
    out.push_back(std::move(doc));
    start = end;
  }
  return out;
}

}  // namespace

Result<std::vector<bson::Document>> RunPipeline(
    std::vector<bson::Document> input, const Pipeline& pipeline) {
  std::vector<bson::Document> docs = std::move(input);
  for (const PipelineStage& stage : pipeline.stages()) {
    if (const auto* match = std::get_if<MatchStage>(&stage)) {
      if (match->expr == nullptr) {
        return Status::InvalidArgument("$match with null expression");
      }
      docs = ApplyMatch(std::move(docs), *match);
    } else if (const auto* project = std::get_if<ProjectStage>(&stage)) {
      docs = ApplyProject(std::move(docs), *project);
    } else if (const auto* sort = std::get_if<SortStage>(&stage)) {
      docs = ApplySort(std::move(docs), *sort);
    } else if (const auto* limit = std::get_if<LimitStage>(&stage)) {
      if (docs.size() > limit->n) docs.resize(limit->n);
    } else if (const auto* group = std::get_if<GroupStage>(&stage)) {
      Result<std::vector<bson::Document>> grouped = ApplyGroup(docs, *group);
      if (!grouped.ok()) return grouped.status();
      docs = std::move(*grouped);
    } else if (const auto* bucket = std::get_if<BucketAutoStage>(&stage)) {
      Result<std::vector<bson::Document>> bucketed =
          ApplyBucketAuto(docs, *bucket);
      if (!bucketed.ok()) return bucketed.status();
      docs = std::move(*bucketed);
    }
  }
  return docs;
}

}  // namespace stix::query
