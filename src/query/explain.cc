#include "query/explain.h"

#include <cstdio>
#include <sstream>

namespace stix::query {

const char* ExplainVerbosityName(ExplainVerbosity v) {
  switch (v) {
    case ExplainVerbosity::kQueryPlanner:
      return "queryPlanner";
    case ExplainVerbosity::kExecStats:
      return "executionStats";
    case ExplainVerbosity::kAllPlansExecution:
      return "allPlansExecution";
  }
  return "unknown";
}

uint64_t ExplainNode::TotalKeysExamined() const {
  uint64_t total = keys_examined;
  for (const ExplainNode& child : children) total += child.TotalKeysExamined();
  return total;
}

uint64_t ExplainNode::TotalDocsExamined() const {
  uint64_t total = docs_examined;
  for (const ExplainNode& child : children) total += child.TotalDocsExamined();
  return total;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ExplainNode::ToJson(ExplainVerbosity v) const {
  std::ostringstream out;
  out << "{\"stage\": \"" << JsonEscape(stage) << "\"";
  if (!index_name.empty()) {
    out << ", \"indexName\": \"" << JsonEscape(index_name) << "\"";
  }
  if (!key_pattern.empty()) {
    out << ", \"keyPattern\": \"" << JsonEscape(key_pattern) << "\"";
  }
  if (!bounds.empty()) {
    out << ", \"indexBounds\": \"" << JsonEscape(bounds) << "\"";
  }
  if (!filter.empty()) {
    out << ", \"filter\": \"" << JsonEscape(filter) << "\"";
  }
  if (v != ExplainVerbosity::kQueryPlanner) {
    out << ", \"works\": " << works << ", \"advanced\": " << advanced
        << ", \"keysExamined\": " << keys_examined
        << ", \"docsExamined\": " << docs_examined;
    if (stage == "BUCKET_UNPACK") {
      out << ", \"bucketsPruned\": " << buckets_pruned
          << ", \"pointsUnpacked\": " << points_unpacked;
    }
    if (est_keys >= 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", est_keys);
      out << ", \"estimatedKeysExamined\": " << buf;
    }
    if (est_docs >= 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", est_docs);
      out << ", \"estimatedDocsExamined\": " << buf;
    }
    if (time_millis >= 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", time_millis);
      out << ", \"executionTimeMillisEstimate\": " << buf;
    }
  }
  if (!children.empty()) {
    out << ", \"inputStages\": [";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out << ", ";
      out << children[i].ToJson(v);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace stix::query
