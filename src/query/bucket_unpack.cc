#include "query/bucket_unpack.h"

#include <algorithm>
#include <string>

namespace stix::query {
namespace {

/// Sorted-by-lo ranges whose lower bounds were just widened may now
/// overlap; merge back to the sorted-disjoint form RangeSetExpr requires.
std::vector<RangeSetExpr::Range> MergeWidenedRanges(
    std::vector<RangeSetExpr::Range> ranges) {
  std::vector<RangeSetExpr::Range> merged;
  for (RangeSetExpr::Range& r : ranges) {
    if (!merged.empty() &&
        r.lo.AsInt64() <= merged.back().hi.AsInt64()) {
      if (r.hi.AsInt64() > merged.back().hi.AsInt64()) {
        merged.back().hi = r.hi;
      }
      continue;
    }
    merged.push_back(std::move(r));
  }
  return merged;
}

ExprPtr WidenTimeCmp(const CmpExpr& cmp, const storage::BucketLayout& layout) {
  const int64_t v = cmp.value().AsDateTime();
  const int64_t widened_lo = v - layout.window_ms + 1;
  switch (cmp.op()) {
    case CmpOp::kGte:
      return MakeCmp(cmp.path(), CmpOp::kGte, bson::Value::DateTime(widened_lo));
    case CmpOp::kGt:
      // ts > v  ⇒  ts >= v+1  ⇒  bucket date >= v+1 - (window-1).
      return MakeCmp(cmp.path(), CmpOp::kGte,
                     bson::Value::DateTime(widened_lo + 1));
    case CmpOp::kLte:
    case CmpOp::kLt:
      // The bucket's date (window start) is <= every point's ts, so upper
      // bounds transfer unchanged.
      return MakeCmp(cmp.path(), cmp.op(), cmp.value());
    case CmpOp::kEq:
      return MakeAnd({MakeCmp(cmp.path(), CmpOp::kGte,
                              bson::Value::DateTime(widened_lo)),
                      MakeCmp(cmp.path(), CmpOp::kLte, cmp.value())});
  }
  return nullptr;
}

ExprPtr WidenHilbertRangeSet(const RangeSetExpr& rs,
                             const storage::BucketLayout& layout) {
  // Without hilbert cells in the bucket key, bucket documents carry no
  // hilbertIndex field at all — the predicate cannot route.
  if (!layout.use_hilbert) return nullptr;
  const int64_t widen = (int64_t{1} << layout.hilbert_shift) - 1;
  std::vector<RangeSetExpr::Range> widened;
  widened.reserve(rs.ranges().size());
  for (const RangeSetExpr::Range& r : rs.ranges()) {
    if (r.lo.type() != bson::Type::kInt64 ||
        r.hi.type() != bson::Type::kInt64) {
      return nullptr;
    }
    widened.push_back({bson::Value::Int64(r.lo.AsInt64() - widen), r.hi});
  }
  return MakeRangeSet(rs.path(), MergeWidenedRanges(std::move(widened)));
}

}  // namespace

ExprPtr WidenForBuckets(const ExprPtr& expr,
                        const storage::BucketLayout& layout) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case MatchExpr::Kind::kAnd: {
      const auto& and_expr = static_cast<const AndExpr&>(*expr);
      std::vector<ExprPtr> widened;
      for (const ExprPtr& child : and_expr.children()) {
        if (ExprPtr w = WidenForBuckets(child, layout)) {
          widened.push_back(std::move(w));
        }
      }
      if (widened.empty()) return nullptr;
      return MakeAnd(std::move(widened));
    }
    case MatchExpr::Kind::kOr: {
      // An $or widens only if every branch does — one unroutable branch
      // means any bucket might match.
      const auto& or_expr = static_cast<const OrExpr&>(*expr);
      std::vector<ExprPtr> widened;
      for (const ExprPtr& child : or_expr.children()) {
        ExprPtr w = WidenForBuckets(child, layout);
        if (w == nullptr) return nullptr;
        widened.push_back(std::move(w));
      }
      if (widened.empty()) return nullptr;
      return MakeOr(std::move(widened));
    }
    case MatchExpr::Kind::kCmp: {
      const auto& cmp = static_cast<const CmpExpr&>(*expr);
      if (cmp.path() == layout.time_field &&
          cmp.value().type() == bson::Type::kDateTime) {
        return WidenTimeCmp(cmp, layout);
      }
      return nullptr;
    }
    case MatchExpr::Kind::kRangeSet: {
      const auto& rs = static_cast<const RangeSetExpr&>(*expr);
      if (rs.path() == layout.hilbert_field) {
        return WidenHilbertRangeSet(rs, layout);
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

namespace {

/// Folds `expr` into `spec`. Returns true iff the node was captured
/// losslessly — the conjunction of what went into the spec is equivalent to
/// the node (drives BucketPruneSpec::exact; pruning side effects happen
/// regardless).
bool ExtractInto(const ExprPtr& expr, const storage::BucketLayout& layout,
                 BucketPruneSpec* spec) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case MatchExpr::Kind::kAnd: {
      const auto& and_expr = static_cast<const AndExpr&>(*expr);
      bool exact = true;
      for (const ExprPtr& child : and_expr.children()) {
        exact = ExtractInto(child, layout, spec) && exact;
      }
      return exact;
    }
    case MatchExpr::Kind::kCmp: {
      const auto& cmp = static_cast<const CmpExpr&>(*expr);
      if (cmp.path() != layout.time_field ||
          cmp.value().type() != bson::Type::kDateTime) {
        return false;
      }
      const int64_t v = cmp.value().AsDateTime();
      switch (cmp.op()) {
        case CmpOp::kGte:
          spec->min_ts = std::max(spec->min_ts.value_or(v), v);
          break;
        case CmpOp::kGt:
          spec->min_ts = std::max(spec->min_ts.value_or(v + 1), v + 1);
          break;
        case CmpOp::kLte:
          spec->max_ts = std::min(spec->max_ts.value_or(v), v);
          break;
        case CmpOp::kLt:
          spec->max_ts = std::min(spec->max_ts.value_or(v - 1), v - 1);
          break;
        case CmpOp::kEq:
          spec->min_ts = std::max(spec->min_ts.value_or(v), v);
          spec->max_ts = std::min(spec->max_ts.value_or(v), v);
          break;
      }
      return true;
    }
    case MatchExpr::Kind::kGeoWithinBox:
    case MatchExpr::Kind::kGeoIntersectsBox:
    case MatchExpr::Kind::kGeoWithinPolygon: {
      geo::Rect box;
      std::string path;
      // A polygon contributes only its bounding box: sound for pruning,
      // lossy for exactness.
      bool lossless = true;
      if (expr->kind() == MatchExpr::Kind::kGeoWithinBox) {
        const auto& g = static_cast<const GeoWithinBoxExpr&>(*expr);
        box = g.box();
        path = g.path();
      } else if (expr->kind() == MatchExpr::Kind::kGeoIntersectsBox) {
        const auto& g = static_cast<const GeoIntersectsBoxExpr&>(*expr);
        box = g.box();
        path = g.path();
      } else {
        const auto& g = static_cast<const GeoWithinPolygonExpr&>(*expr);
        box = g.region().BoundingBox();
        path = g.path();
        lossless = false;
      }
      if (path != layout.location_field) return false;
      if (!spec->rect.has_value()) {
        spec->rect = box;
      } else {
        // Intersection of conjunctive boxes; an empty intersection prunes
        // every bucket, which is exactly right.
        spec->rect->lo.lon = std::max(spec->rect->lo.lon, box.lo.lon);
        spec->rect->lo.lat = std::max(spec->rect->lo.lat, box.lo.lat);
        spec->rect->hi.lon = std::min(spec->rect->hi.lon, box.hi.lon);
        spec->rect->hi.lat = std::min(spec->rect->hi.lat, box.hi.lat);
      }
      return lossless;
    }
    case MatchExpr::Kind::kRangeSet: {
      const auto& rs = static_cast<const RangeSetExpr&>(*expr);
      if (rs.path() != layout.hilbert_field || !spec->hil_ranges.empty()) {
        return false;
      }
      for (const RangeSetExpr::Range& r : rs.ranges()) {
        if (r.lo.type() != bson::Type::kInt64 ||
            r.hi.type() != bson::Type::kInt64) {
          spec->hil_ranges.clear();
          return false;
        }
        spec->hil_ranges.emplace_back(r.lo.AsInt64(), r.hi.AsInt64());
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool BucketPruneSpec::MayContain(const storage::BucketMeta& meta) const {
  if (min_ts.has_value() && meta.max_ts < *min_ts) return false;
  if (max_ts.has_value() && meta.min_ts > *max_ts) return false;
  if (rect.has_value() && meta.has_mbr && !rect->Intersects(meta.mbr)) {
    return false;
  }
  if (!hil_ranges.empty() && !meta.hil_ranges.empty()) {
    // Both sides sorted and disjoint: two-pointer overlap test.
    size_t i = 0, j = 0;
    bool overlap = false;
    while (i < hil_ranges.size() && j < meta.hil_ranges.size()) {
      const auto& a = hil_ranges[i];
      const auto& b = meta.hil_ranges[j];
      if (a.second < b.first) {
        ++i;
      } else if (b.second < a.first) {
        ++j;
      } else {
        overlap = true;
        break;
      }
    }
    if (!overlap) return false;
  }
  return true;
}

bool BucketPruneSpec::Covers(const storage::BucketMeta& meta) const {
  if (!exact) return false;
  if (min_ts.has_value() && meta.min_ts < *min_ts) return false;
  if (max_ts.has_value() && meta.max_ts > *max_ts) return false;
  if (rect.has_value()) {
    // has_mbr guarantees every point carries a canonical GeoJSON location,
    // so MBR containment implies each point matches the geo leaf.
    if (!meta.has_mbr || !rect->ContainsRect(meta.mbr)) return false;
  }
  if (!hil_ranges.empty()) {
    if (meta.hil_ranges.empty()) return false;
    // Every meta range must lie inside one spec range (both sides sorted
    // and disjoint, so a single forward sweep suffices).
    size_t i = 0;
    for (const auto& m : meta.hil_ranges) {
      while (i < hil_ranges.size() && hil_ranges[i].second < m.first) ++i;
      if (i == hil_ranges.size() || hil_ranges[i].first > m.first ||
          hil_ranges[i].second < m.second) {
        return false;
      }
    }
  }
  return true;
}

BucketPruneSpec ExtractBucketPredicates(const ExprPtr& expr,
                                        const storage::BucketLayout& layout) {
  BucketPruneSpec spec;
  spec.exact = ExtractInto(expr, layout, &spec);
  return spec;
}

BucketUnpackStage::BucketUnpackStage(
    std::unique_ptr<PlanStage> child, ExprPtr point_expr,
    std::shared_ptr<const storage::BucketLayout> layout)
    : child_(std::move(child)),
      point_expr_(std::move(point_expr)),
      layout_(std::move(layout)),
      prune_(ExtractBucketPredicates(point_expr_, *layout_)) {}

PlanStage::State BucketUnpackStage::Work(storage::RecordId* rid_out,
                                         const bson::Document** doc_out) {
  *doc_out = nullptr;
  if (next_pending_ < arena_.size()) {
    *rid_out = pending_rid_;
    *doc_out = &arena_[next_pending_++];
    return State::kAdvanced;
  }

  storage::RecordId rid = storage::kInvalidRecordId;
  const bson::Document* doc = nullptr;
  const State child_state = child_->WorkUnit(&rid, &doc);
  if (child_state != State::kAdvanced) return child_state;
  if (doc == nullptr) return State::kNeedTime;

  if (!storage::IsBucketDocument(*doc)) {
    // A plain (row-layout) document in the stream: filter and pass it
    // through, copied into the arena so that every document this stage
    // emits is arena-owned — the executor moves transient results out of
    // the arena wholesale, which must never touch record-store memory.
    if (point_expr_ != nullptr && !point_expr_->Matches(*doc)) {
      return State::kNeedTime;
    }
    arena_.push_back(*doc);
    next_pending_ = arena_.size();
    *rid_out = rid;
    *doc_out = &arena_.back();
    return State::kAdvanced;
  }

  Result<storage::BucketMeta> meta = storage::ParseBucketMeta(*doc);
  if (!meta.ok()) {
    ++decode_errors_;
    return State::kNeedTime;
  }
  if (!prune_.MayContain(*meta)) {
    ++buckets_pruned_;
    return State::kNeedTime;
  }

  Result<std::vector<bson::Document>> points =
      storage::DecodeBucket(*doc, *layout_);
  if (!points.ok()) {
    ++decode_errors_;
    return State::kNeedTime;
  }
  points_unpacked_ += points->size();

  // A bucket whose metadata lies wholly inside an exact spec needs no
  // per-point filtering: every decoded point matches by construction.
  const bool covered = prune_.Covers(*meta);
  const size_t before = arena_.size();
  for (bson::Document& point : *points) {
    if (covered || point_expr_ == nullptr || point_expr_->Matches(point)) {
      arena_.push_back(std::move(point));
    }
  }
  if (arena_.size() == before) return State::kNeedTime;

  // Every point of this bucket is attributed to the bucket's record id.
  pending_rid_ = rid;
  *rid_out = pending_rid_;
  *doc_out = &arena_[next_pending_++];
  return State::kAdvanced;
}

void BucketUnpackStage::AccumulateStats(ExecStats* stats) const {
  // docs_examined was charged by the child when it loaded each bucket; the
  // unpack itself examines no stored documents.
  child_->AccumulateStats(stats);
}

std::string BucketUnpackStage::Summary() const {
  return "BUCKET_UNPACK -> " + child_->Summary();
}

ExplainNode BucketUnpackStage::Explain() const {
  ExplainNode node;
  node.stage = "BUCKET_UNPACK";
  if (point_expr_ != nullptr) node.filter = point_expr_->DebugString();
  node.buckets_pruned = buckets_pruned_;
  node.points_unpacked = points_unpacked_;
  FillExplainBase(&node);
  node.children.push_back(child_->Explain());
  return node;
}

}  // namespace stix::query
