#ifndef STIX_QUERY_EXPLAIN_H_
#define STIX_QUERY_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stix::query {

/// MongoDB's explain verbosity ladder. In this engine every verbosity
/// executes the query once (execution is the only way to obtain trustworthy
/// counters here — there is no cost model to print instead); verbosity only
/// controls how much of what was measured is serialized:
///  - kQueryPlanner: plan shape, index names, bounds — no runtime counters.
///  - kExecStats: + per-stage works/advanced/keys/docs and stage timing.
///  - kAllPlansExecution: + the rejected candidate plans with the partial
///    counters they accumulated during the trial race.
enum class ExplainVerbosity {
  kQueryPlanner,
  kExecStats,
  kAllPlansExecution,
};

/// "queryPlanner" / "executionStats" / "allPlansExecution".
const char* ExplainVerbosityName(ExplainVerbosity v);

/// One stage of an executed plan tree, JSON-serializable. Counters carry
/// exactly what the stage's own bookkeeping observed, so summing a field
/// over the tree reproduces the executor's ExecStats for that plan —
/// the invariant the fuzz harness checks on every seed.
struct ExplainNode {
  std::string stage;       ///< "IXSCAN", "FETCH", "COLLSCAN", "BUCKET_UNPACK".
  std::string index_name;  ///< IXSCAN: index the scan runs over.
  std::string key_pattern; ///< IXSCAN: "{hilbertIndex: 1, date: 1}".
  std::string bounds;      ///< IXSCAN: IndexBounds::DebugString().
  std::string filter;      ///< FETCH/COLLSCAN: residual filter, if any.
  uint64_t works = 0;      ///< Work() units charged to this stage.
  uint64_t advanced = 0;   ///< Units that produced a document.
  uint64_t keys_examined = 0;  ///< IXSCAN only.
  uint64_t docs_examined = 0;  ///< FETCH/COLLSCAN only.
  uint64_t buckets_pruned = 0;    ///< BUCKET_UNPACK: skipped via metadata.
  uint64_t points_unpacked = 0;   ///< BUCKET_UNPACK: decompressed points.
  /// Wall time spent inside this stage's Work() calls, children included
  /// (MongoDB's executionTimeMillisEstimate is likewise inclusive).
  /// Negative when stage timing was not enabled for the execution.
  double time_millis = -1.0;
  /// Histogram-based predictions the cost model made for this stage before
  /// execution (est_keys on the IXSCAN, est_docs on the FETCH/COLLSCAN),
  /// printed next to the actual counters so estimation error is measurable
  /// per stage. Negative when no estimate was computed.
  double est_keys = -1.0;
  double est_docs = -1.0;
  std::vector<ExplainNode> children;

  /// Sum of keys_examined / docs_examined over this subtree.
  uint64_t TotalKeysExamined() const;
  uint64_t TotalDocsExamined() const;

  /// JSON object for the stage subtree at the given verbosity.
  std::string ToJson(ExplainVerbosity v) const;
};

/// Minimal JSON string escaping for explain/serverStatus output (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace stix::query

#endif  // STIX_QUERY_EXPLAIN_H_
