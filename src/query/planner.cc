#include "query/planner.h"

#include "geo/covering.h"
#include "query/bucket_unpack.h"
#include "query/query_analysis.h"

namespace stix::query {
namespace {

// Cell intervals for a 2dsphere field from the query region (rectangle or
// polygon), via the GeoHash (Z-order) covering at the index's precision.
index::FieldBounds GeoBounds(const geo::GeoHash& geohash,
                             const geo::Region& region) {
  const geo::Covering covering = geo::CoverRegion(geohash.curve(), region);
  index::FieldBounds fb;
  fb.intervals.reserve(covering.ranges.size());
  for (const geo::DRange& r : covering.ranges) {
    fb.intervals.push_back(
        index::ValueInterval{bson::Value::Int64(static_cast<int64_t>(r.lo)),
                             bson::Value::Int64(static_cast<int64_t>(r.hi))});
  }
  return fb;
}

}  // namespace

std::vector<CandidatePlan> Planner::Plan(const storage::RecordStore& records,
                                         const index::IndexCatalog& catalog,
                                         const ExprPtr& expr,
                                         const PlanningContext& ctx) {
  // Bucketed collections: index bounds come from the *widened* rewrite of
  // the point expression (safe over bucket documents); the exact point
  // filter moves into the BUCKET_UNPACK stage wrapped around every plan.
  // A null widened expression simply constrains no path, so the planner
  // falls through to BUCKET_UNPACK -> COLLSCAN.
  const bool bucketed = ctx.bucket_layout != nullptr;
  ExprPtr bounds_expr = expr;
  if (bucketed) bounds_expr = WidenForBuckets(expr, *ctx.bucket_layout);

  const std::map<std::string, PathInfo> paths = AnalyzeQuery(bounds_expr);
  std::vector<CandidatePlan> candidates;

  for (const auto& idx : catalog.indexes()) {
    const index::IndexDescriptor& desc = idx->descriptor();
    index::IndexBounds bounds;
    bounds.fields.reserve(desc.num_fields());
    bool leading_constrained = false;

    // Fields after a geo-constrained 2dsphere field keep full-range bounds
    // and are filtered at FETCH instead. This mirrors MongoDB 4.0's
    // 2dsphere access method (the paper's platform): its {location, date}
    // compound scans visit every key of the covering's cells regardless of
    // the date predicate — which is exactly why the paper's bslST examines
    // orders of magnitude more keys than hil on big rectangles and why its
    // optimizer flips to the {date} index for short windows (Table 7).
    bool after_geo_bounds = false;
    for (size_t i = 0; i < desc.num_fields(); ++i) {
      const index::IndexField& field = desc.fields()[i];
      const auto it = paths.find(field.path);
      const PathInfo* info = it == paths.end() ? nullptr : &it->second;

      if (field.kind == index::IndexFieldKind::k2dsphere) {
        if (info != nullptr && info->geo != nullptr && !after_geo_bounds) {
          bounds.fields.push_back(
              GeoBounds(idx->keygen().geohash(), *info->geo));
          after_geo_bounds = true;
        } else {
          index::FieldBounds fb;
          fb.full_range = true;
          bounds.fields.push_back(std::move(fb));
        }
      } else if (after_geo_bounds) {
        index::FieldBounds fb;
        fb.full_range = true;
        bounds.fields.push_back(std::move(fb));
      } else {
        bounds.fields.push_back(AscendingBounds(info));
      }
      if (i == 0) {
        leading_constrained =
            !bounds.fields[0].full_range && !bounds.fields[0].intervals.empty();
      }
    }
    if (!leading_constrained) continue;

    CandidatePlan plan;
    plan.index_name = desc.name();
    plan.access.bucketed = bucketed;
    plan.access.bounds = bounds;  // cost-model copy; the stage owns the move
    plan.access.field_paths.reserve(desc.num_fields());
    plan.access.field_is_geo.reserve(desc.num_fields());
    for (const index::IndexField& field : desc.fields()) {
      plan.access.field_paths.push_back(field.path);
      plan.access.field_is_geo.push_back(field.kind ==
                                         index::IndexFieldKind::k2dsphere);
    }
    auto scan = std::make_unique<IndexScanStage>(*idx, std::move(bounds));
    if (bucketed) {
      // FETCH loads the bucket with no filter (pruning happens on bucket
      // metadata inside the unpack, the exact filter on decoded points).
      auto fetch =
          std::make_unique<FetchStage>(records, std::move(scan), nullptr);
      plan.root = std::make_unique<BucketUnpackStage>(std::move(fetch), expr,
                                                      ctx.bucket_layout);
      plan.transient_docs = true;
    } else {
      plan.root = std::make_unique<FetchStage>(records, std::move(scan), expr);
    }
    plan.summary = plan.root->Summary();
    candidates.push_back(std::move(plan));
  }

  if (candidates.empty()) {
    CandidatePlan plan;
    plan.access.collscan = true;
    plan.access.bucketed = bucketed;
    if (bucketed) {
      auto scan = std::make_unique<CollScanStage>(records, nullptr);
      plan.root = std::make_unique<BucketUnpackStage>(std::move(scan), expr,
                                                      ctx.bucket_layout);
      plan.transient_docs = true;
    } else {
      plan.root = std::make_unique<CollScanStage>(records, expr);
    }
    plan.summary = plan.root->Summary();
    candidates.push_back(std::move(plan));
  }
  return candidates;
}

}  // namespace stix::query
