#ifndef STIX_QUERY_EXECUTOR_H_
#define STIX_QUERY_EXECUTOR_H_

#include <vector>

#include "common/stopwatch.h"
#include "query/plan_cache.h"
#include "query/planner.h"

namespace stix::query {

/// Knobs of the trial-based plan selection (MongoDB's multi-planner).
struct ExecutorOptions {
  /// A plan that produces this many results during the trial wins
  /// immediately (MongoDB's 101).
  uint64_t trial_results = 101;
  /// Per-plan work budget for the trial; 0 derives it from collection size
  /// (MongoDB: max(10000, 0.3 * collection size)).
  uint64_t trial_works = 0;
  /// A cached plan may spend up to replan_factor * cached-works (but at
  /// least replan_min_works) before it is abandoned and the shape re-raced
  /// (MongoDB's internalQueryCacheEvictionRatio = 10).
  double replan_factor = 10.0;
  uint64_t replan_min_works = 200;
};

/// Result of running one query on one shard-local collection.
///
/// Matched documents are returned as borrowed pointers into the shard's
/// RecordStore — the executor copies nothing. Pointers stay valid until the
/// collection is next mutated; callers that outlive that window (the router
/// merge, deletes) materialize what they need exactly once.
struct ExecutionResult {
  std::vector<const bson::Document*> docs;
  /// RecordIds parallel to `docs` (consumed by deletes and diagnostics).
  std::vector<storage::RecordId> rids;

  /// Copies the matched documents out of the record store (the one
  /// materialization point for callers that need owned documents).
  std::vector<bson::Document> MaterializeDocs() const {
    std::vector<bson::Document> out;
    out.reserve(docs.size());
    for (const bson::Document* d : docs) out.push_back(*d);
    return out;
  }

  ExecStats stats;
  double exec_millis = 0.0;
  std::string winning_index;  ///< Index the (multi-)planner settled on.
  int num_candidates = 0;
  bool from_plan_cache = false;
  /// True when a cached plan blew its works budget and the shape was
  /// re-raced during this execution.
  bool replanned = false;
};

/// Plans and runs a query to completion. With multiple candidate plans the
/// candidates race for a trial period and the most productive one continues
/// — this is the mechanism behind the paper's Table 7 (bslST sometimes
/// running on the {date} shard-key index instead of the compound index).
///
/// When `cache` is non-null, a winning multi-plan race is remembered by
/// query shape and later executions of the same shape skip the race
/// (MongoDB's plan cache; its warm-state measurements depend on it).
ExecutionResult ExecuteQuery(const storage::RecordStore& records,
                             const index::IndexCatalog& catalog,
                             const ExprPtr& expr,
                             const ExecutorOptions& options = {},
                             PlanCache* cache = nullptr);

}  // namespace stix::query

#endif  // STIX_QUERY_EXECUTOR_H_
