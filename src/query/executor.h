#ifndef STIX_QUERY_EXECUTOR_H_
#define STIX_QUERY_EXECUTOR_H_

#include <cassert>
#include <deque>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "query/cost.h"
#include "query/plan_cache.h"
#include "query/planner.h"

namespace stix::query {

/// What a paused executor does about concurrent collection mutation.
enum class YieldPolicy {
  /// Detach from btree/record-store memory at every batch boundary
  /// (SaveState) and reposition from the last KeyString on resume
  /// (RestoreState) — reads survive concurrent inserts and migrations, as
  /// MongoDB's YIELD_AUTO does. The default.
  kYieldAndRestore,
  /// Legacy pre-yield behaviour: keep raw cursors across batches and rely
  /// on the RecordStore generation borrow guard to catch use-after-mutate.
  /// Only safe when the collection is quiesced for the cursor's lifetime.
  kAbortOnMutation,
};

/// How plan selection settles on a winner when several candidates exist.
enum class PlanSelectionMode {
  /// Always run the multi-planner trial race (the pre-stats behaviour).
  kRace,
  /// Estimate each candidate from the shard's histograms first and pick
  /// outright when the margin test is decisive; race only under
  /// uncertainty (stale stats, missing histograms, close estimates) or
  /// when a cost-picked plan blows its derived works cap. The default.
  kCost,
};

/// How one execution settled on its winning plan (explain/profiler and
/// the fuzz oracle's counters).
enum class PlannedBy {
  kNone,    ///< Not prepared yet.
  kSingle,  ///< One candidate — nothing to select.
  kCache,   ///< Replayed a cached plan for the shape.
  kCost,    ///< Cost model picked outright from histogram estimates.
  kRace,    ///< Multi-planner trial race.
};

const char* PlannedByName(PlannedBy p);

/// Knobs of the trial-based plan selection (MongoDB's multi-planner).
struct ExecutorOptions {
  /// A plan that produces this many results during the trial wins
  /// immediately (MongoDB's 101).
  uint64_t trial_results = 101;
  /// Per-plan work budget for the trial; 0 derives it from collection size
  /// (MongoDB: max(10000, 0.3 * collection size)).
  uint64_t trial_works = 0;
  /// A cached plan may spend up to replan_factor * cached-works (but at
  /// least replan_min_works) before it is abandoned and the shape re-raced
  /// (MongoDB's internalQueryCacheEvictionRatio = 10).
  double replan_factor = 10.0;
  uint64_t replan_min_works = 200;
  /// Per-stage wall-clock timing on every plan stage (explain/profiler
  /// executions). Off by default: normal queries pay no clock reads.
  bool stage_timing = false;
  /// See YieldPolicy. kYieldAndRestore lets shard cursors survive
  /// concurrent writers and the online balancer between getMore calls.
  YieldPolicy yield_policy = YieldPolicy::kYieldAndRestore;
  /// Non-null when the collection stores bucket documents (see
  /// storage/bucket.h): queries plan as BUCKET_UNPACK over widened bounds
  /// and return decoded *points*. The layout must match what the writing
  /// BucketCatalog used.
  std::shared_ptr<const storage::BucketLayout> bucket_layout;
  /// With bucket_layout set, true bypasses the unpack and runs the query
  /// against the raw bucket documents (routing metadata scans, deletes).
  /// The expression must then be bucket-level (already widened).
  bool raw_buckets = false;
  /// See PlanSelectionMode. kCost additionally needs `shard_stats`; with
  /// no statistics attached the executor behaves exactly like kRace.
  PlanSelectionMode plan_selection = PlanSelectionMode::kCost;
  /// A cost-based pick is decisive only when the runner-up's (smoothed)
  /// estimated cost is at least this factor above the best candidate's.
  double cost_confidence_margin = 1.5;
  /// The owning shard's statistics, or null (estimation disabled). The
  /// executor only reads; the shard maintains and rebuilds.
  const stats::ShardStatistics* shard_stats = nullptr;
};

/// Result of running one query on one shard-local collection.
///
/// Matched documents are returned as borrowed pointers into the shard's
/// RecordStore — the executor copies nothing. Pointers stay valid until the
/// collection is next mutated; callers that outlive that window (the router
/// merge, deletes) materialize what they need exactly once.
struct ExecutionResult {
  std::vector<const bson::Document*> docs;
  /// RecordIds parallel to `docs` (consumed by deletes and diagnostics).
  /// Bucket-unpacked points share their bucket's record id, so ids can
  /// repeat.
  std::vector<storage::RecordId> rids;

  /// Bucket-unpacked executions only: the decoded points, owned by the
  /// result itself (`docs` points into this vector; moving the result
  /// moves the buffer, so the pointers survive). Empty for row-layout
  /// executions, whose docs borrow from the record store instead.
  std::vector<bson::Document> owned;

  /// Borrow guard: the store the pointers borrow from and its generation at
  /// production time (see RecordStore::generation()). Reading `docs` after
  /// the store mutated is a use-after-mutate bug — debug builds abort via
  /// CheckBorrows(), release builds can test BorrowsValid().
  const storage::RecordStore* borrow_source = nullptr;
  uint64_t borrow_generation = 0;

  bool BorrowsValid() const {
    return borrow_source == nullptr ||
           borrow_source->generation() == borrow_generation;
  }
  void CheckBorrows() const { assert(BorrowsValid()); }

  /// Copies the matched documents out of the record store (the one
  /// materialization point for callers that need owned documents).
  std::vector<bson::Document> MaterializeDocs() const {
    CheckBorrows();
    std::vector<bson::Document> out;
    out.reserve(docs.size());
    for (const bson::Document* d : docs) out.push_back(*d);
    return out;
  }

  ExecStats stats;
  double exec_millis = 0.0;
  std::string winning_index;  ///< Index the (multi-)planner settled on.
  int num_candidates = 0;
  bool from_plan_cache = false;
  /// True when a cached plan blew its works budget and the shape was
  /// re-raced during this execution.
  bool replanned = false;
  /// How the winner was selected (see PlannedBy).
  PlannedBy planned_by = PlannedBy::kNone;
  /// Winning plan's histogram estimate when one was computed (negative
  /// when estimation did not run or was invalid for the winner).
  double estimated_keys = -1.0;
  double estimated_docs = -1.0;
};

/// Resumable, demand-driven query executor — the shard half of the
/// streaming pipeline. Construction is cheap; the first Next() call plans
/// the query and settles on a winner (replaying a cached plan under the
/// replanning budget, re-racing mid-stream when the budget blows, or
/// running the full multi-plan trial race), and every Next() after that
/// pulls a single result from the winning plan on demand.
///
/// A non-zero `limit` is pushed down: the stream ends after `limit`
/// documents and the trial race's result target is capped to it, so a
/// limit-k execution examines strictly fewer keys/docs than a full drain.
/// An unlimited drain performs the exact Work()-call sequence of the old
/// batch executor, so stats, winner and cache state come out identical.
///
/// Lifetime: borrows `records`, `catalog` and `cache` and yields document
/// pointers into `records`; consume results before the collection next
/// mutates (see ExecutionResult's borrow guard) and do not outlive the
/// shard.
class PlanExecutor {
 public:
  PlanExecutor(const storage::RecordStore& records,
               const index::IndexCatalog& catalog, ExprPtr expr,
               const ExecutorOptions& options = {}, PlanCache* cache = nullptr,
               uint64_t limit = 0);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Pulls the next result; false at end of stream (EOF or limit reached),
  /// after which the stats/winner accessors are final. *doc_out borrows
  /// from the record store.
  bool Next(storage::RecordId* rid_out, const bson::Document** doc_out);

  /// True once Next() has returned false.
  bool exhausted() const { return phase_ == Phase::kDone; }

  /// Detaches the execution from btree/record-store memory so the
  /// collection may mutate while the executor is dormant (a MongoDB yield):
  /// unreturned trial-race results are materialized into executor-owned
  /// storage and every stage cursor collapses to its last KeyString
  /// position. Called by ShardCursor at batch boundaries, while the shard
  /// lock is still held. Idempotent; a no-op before the first Next() and
  /// after exhaustion.
  void SaveState();

  /// Repositions the stages after SaveState, before the next pull — under
  /// the shard lock. Entries removed during the yield are stepped over;
  /// entries inserted behind the scan position are not revisited.
  void RestoreState();

  /// Counters accumulated so far; after an unlimited drain they match the
  /// batch executor's ExecStats exactly.
  ExecStats CurrentStats() const;

  uint64_t n_returned() const { return returned_; }
  const std::string& winning_index() const;
  /// True when the winning plan's documents are owned by the plan itself
  /// (BUCKET_UNPACK arena) — they die with this executor, not with the
  /// next collection mutation. False before the first Next().
  bool winner_transient() const {
    return winner_ != nullptr && winner_->plan->transient_docs;
  }
  int num_candidates() const { return num_candidates_; }
  bool from_plan_cache() const { return from_plan_cache_; }
  bool replanned() const { return replanned_; }
  PlannedBy planned_by() const { return planned_by_; }
  /// The winner's histogram estimate, or null when estimation did not run
  /// or produced nothing valid for the winning candidate.
  const PlanEstimate* winner_estimate() const;

  /// Explain tree of the winning plan. The counters are whatever the
  /// execution has accumulated so far, so after a drain the tree's
  /// keys/docs sums equal CurrentStats() exactly (winner-only, like the
  /// stats — losing racers and an abandoned cached plan report through
  /// ExplainRejected instead). An unprepared executor returns an empty
  /// "NONE" node.
  ExplainNode ExplainWinner() const;

  /// Explain trees of every candidate that did not win (trial losers, and
  /// the abandoned cached plan's fresh re-race losers), with the partial
  /// counters they accumulated.
  std::vector<ExplainNode> ExplainRejected() const;

 private:
  enum class Phase { kInit, kBuffer, kStream, kDone };

  // Racers accumulate borrowed pointers during the trial — losing
  // candidates never copy a document, and the winner's buffered results
  // are replayed to the caller before live streaming resumes.
  struct Racer {
    CandidatePlan* plan;
    std::vector<const bson::Document*> docs;
    std::vector<storage::RecordId> rids;
    uint64_t works = 0;
    bool eof = false;
  };

  void Prepare();
  std::string MakeShape() const;
  bool DrainCachedWithCap(Racer* racer, uint64_t cap);
  Racer* RunTrial();
  void Finish();
  /// Estimate recorded for `plan` by the last ChoosePlan call, if any.
  const PlanEstimate* EstimateForPlan(const CandidatePlan* plan) const;

  const storage::RecordStore& records_;
  const index::IndexCatalog& catalog_;
  ExprPtr expr_;
  ExecutorOptions options_;
  PlanCache* cache_;
  uint64_t limit_;

  Phase phase_ = Phase::kInit;
  std::vector<CandidatePlan> candidates_;
  std::vector<Racer> racers_;
  Racer* winner_ = nullptr;
  // Documents materialized out of the record store at SaveState so the
  // buffered replay survives mutation; a deque so pointers handed back to
  // the winner's doc vector stay stable as more yields append.
  std::deque<bson::Document> owned_buffer_;
  bool saved_ = false;
  size_t buffer_pos_ = 0;
  uint64_t returned_ = 0;
  std::string shape_;
  bool raced_ = false;
  int num_candidates_ = 0;
  bool from_plan_cache_ = false;
  bool replanned_ = false;
  PlannedBy planned_by_ = PlannedBy::kNone;
  /// Parallel to candidates_ when cost selection ran (cleared on replan —
  /// indexes would go stale against a rebuilt candidate vector).
  std::vector<PlanEstimate> estimates_;
};

/// Plans and runs a query to completion (open + drain over PlanExecutor).
/// With multiple candidate plans the candidates race for a trial period and
/// the most productive one continues — this is the mechanism behind the
/// paper's Table 7 (bslST sometimes running on the {date} shard-key index
/// instead of the compound index).
///
/// When `cache` is non-null, a winning multi-plan race is remembered by
/// query shape and later executions of the same shape skip the race
/// (MongoDB's plan cache; its warm-state measurements depend on it).
ExecutionResult ExecuteQuery(const storage::RecordStore& records,
                             const index::IndexCatalog& catalog,
                             const ExprPtr& expr,
                             const ExecutorOptions& options = {},
                             PlanCache* cache = nullptr);

}  // namespace stix::query

#endif  // STIX_QUERY_EXECUTOR_H_
