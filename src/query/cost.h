#ifndef STIX_QUERY_COST_H_
#define STIX_QUERY_COST_H_

#include <vector>

#include "query/planner.h"
#include "query/stats/shard_stats.h"

namespace stix::query {

/// Histogram-backed cardinality estimate of one candidate plan.
///
/// `keys`/`docs` predict ExecStats::keys_examined / docs_examined for a
/// full drain. `cost` is the works-equivalent the executor compares plans
/// by: keys + docs, plus the decoded-point volume for BUCKET_UNPACK plans
/// (unpacking a fetched bucket touches every point it stores, the same
/// unit the works counter bills).
struct PlanEstimate {
  bool valid = false;  ///< False when a constrained path has no histogram.
  double keys = 0.0;
  double docs = 0.0;
  double cost = 0.0;
};

/// Estimates one candidate from its PlanAccess description:
///  - COLLSCAN: docs = N (every stored document is examined);
///  - IXSCAN: keys follow the IndexScanStage seek semantics — the leading
///    field's interval set bounds the scanned key range, and trailing
///    fields narrow `keys` only while every preceding field's intervals
///    are points (direct seeks); otherwise trailing bounds degrade to
///    per-key checks, which narrow `docs` but not `keys`. Each leading
///    interval additionally bills one seek.
///  - BUCKET_UNPACK wrappers add docs * avg_points_per_doc to `cost`.
/// Invalid (fall back to the trial race) when any constrained field's
/// path has no histogram or the bounds are not int64-comparable.
PlanEstimate EstimatePlan(const CandidatePlan& plan,
                          const stats::ShardStatistics& stats);

/// Outcome of cost-based selection over a candidate set.
struct PlanChoice {
  /// Index of the outright winner in `candidates`, or -1 when the
  /// estimates are not decisive (invalid, or the margin test failed) and
  /// the caller should race.
  int winner = -1;
  /// Parallel to `candidates`.
  std::vector<PlanEstimate> estimates;
};

/// Picks a plan outright iff every candidate estimates valid and the best
/// cost beats the runner-up by `confidence_margin` (smoothed, so
/// near-zero costs never look decisively different). A single candidate
/// always wins outright.
PlanChoice ChoosePlan(const std::vector<CandidatePlan>& candidates,
                      const stats::ShardStatistics& stats,
                      double confidence_margin);

}  // namespace stix::query

#endif  // STIX_QUERY_COST_H_
