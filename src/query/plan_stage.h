#ifndef STIX_QUERY_PLAN_STAGE_H_
#define STIX_QUERY_PLAN_STAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "index/index.h"
#include "index/index_bounds.h"
#include "query/explain.h"
#include "query/expression.h"
#include "storage/btree.h"
#include "storage/record_store.h"

namespace stix::query {

/// Execution counters in MongoDB explain() vocabulary. keysExamined counts
/// index entries the scan visited (matching or not); docsExamined counts
/// FETCH-stage record loads — the paper's two cost metrics.
struct ExecStats {
  uint64_t keys_examined = 0;
  uint64_t docs_examined = 0;
  uint64_t n_returned = 0;
  uint64_t works = 0;
  std::string plan_summary;  ///< e.g. "IXSCAN {date: 1}" or "COLLSCAN".
};

/// One unit of output from a plan stage: a record id plus a document pointer
/// borrowed from the shard's RecordStore (valid until the store mutates —
/// see RecordStore::generation()).
struct WorkItem {
  storage::RecordId rid = storage::kInvalidRecordId;
  const bson::Document* doc = nullptr;
};

/// A Volcano-with-work-units plan stage (as in MongoDB's executor): each
/// Work() call performs one unit of work and either produces a document,
/// asks for more time, or signals end of stream. The unit granularity is
/// what makes multi-plan "racing" meaningful.
class PlanStage {
 public:
  enum class State { kAdvanced, kNeedTime, kEof };

  /// Outcome of a Next() pull — either a document was produced, the stream
  /// ended, or the works budget ran out before either happened.
  enum class NextResult { kDoc, kEof, kBudget };

  virtual ~PlanStage() = default;

  /// On kAdvanced, *doc_out points at the produced document (owned by the
  /// record store) and *rid_out is its id.
  virtual State Work(storage::RecordId* rid_out,
                     const bson::Document** doc_out) = 0;

  /// Bookkeeping entry point every caller (executors, parent stages) uses
  /// instead of Work(): charges the unit to this stage's explain counters
  /// — and, when stage timing is enabled, its clock — then delegates to
  /// Work(). One branch on a bool when timing is off, so the hot path pays
  /// two increments.
  State WorkUnit(storage::RecordId* rid_out, const bson::Document** doc_out);

  /// Turns on per-stage wall-clock timing for this stage and its subtree
  /// (explain/profiler executions only — never the default query path).
  /// Times are inclusive of children, like MongoDB's
  /// executionTimeMillisEstimate.
  void EnableTiming();

  /// Explain subtree for this stage, counters included (see explain.h for
  /// what each verbosity serializes — the node always carries everything).
  virtual ExplainNode Explain() const = 0;

  /// Detaches the stage (and its subtree) from btree/record-store memory so
  /// the collection may mutate while the stage is dormant: cursors record
  /// their position as a (KeyString, RecordId) pair and are invalidated.
  /// The executor calls this at batch boundaries (a MongoDB yield).
  virtual void SaveState() {
    if (PlanStage* child = child_stage()) child->SaveState();
  }

  /// Reattaches after SaveState: cursors reposition from their saved
  /// KeyString (first entry >= the saved position), so entries inserted
  /// behind the scan point are skipped and removed entries are stepped over
  /// — MongoDB's restore contract for yielded index scans.
  virtual void RestoreState() {
    if (PlanStage* child = child_stage()) child->RestoreState();
  }

  /// Demand-driven pull: spins Work() until the stage produces a document
  /// or reaches end of stream, charging every unit spent to *works. When
  /// works_budget is non-zero the pull also stops (kBudget) once *works
  /// reaches the budget, so a caller can drain a cached plan under the
  /// replanning cap without overshooting. The budget is checked before each
  /// unit, matching the batch executor's accounting: the Work() call that
  /// returns kEof is itself counted as a unit.
  NextResult Next(WorkItem* item, uint64_t* works, uint64_t works_budget = 0);

  virtual void AccumulateStats(ExecStats* stats) const = 0;

  virtual std::string Summary() const = 0;

 protected:
  /// Copies the base counters (works/advanced/time) into an explain node.
  void FillExplainBase(ExplainNode* node) const;

  /// Input stage, for EnableTiming's recursion (every stage here has at
  /// most one input). Leaf stages keep the null default.
  virtual PlanStage* child_stage() { return nullptr; }

  uint64_t stage_works_ = 0;
  uint64_t stage_advanced_ = 0;
  bool timing_enabled_ = false;
  uint64_t stage_time_nanos_ = 0;
};

/// Index scan with MongoDB-style compound-bounds checking: visits keys in
/// order, validates every field position against its interval set, and
/// seeks ahead over gaps (point-interval prefixes become direct seeks, range
/// prefixes degrade trailing bounds into per-key checks — the asymmetry
/// between the paper's bslST and bslTS lives exactly here).
class IndexScanStage : public PlanStage {
 public:
  IndexScanStage(const index::Index& idx, index::IndexBounds bounds);

  State Work(storage::RecordId* rid_out,
             const bson::Document** doc_out) override;
  void SaveState() override;
  void RestoreState() override;
  void AccumulateStats(ExecStats* stats) const override;
  std::string Summary() const override;
  ExplainNode Explain() const override;

 private:
  /// Builds the lowest possible key consistent with the bounds' first
  /// intervals, to position the initial seek.
  std::string BuildStartKey() const;

  const index::Index& index_;
  index::IndexBounds bounds_;
  storage::BTree::Cursor cursor_;
  bool initialized_ = false;
  bool done_ = false;
  // Saved scan position across a yield: the (key, rid) of the next entry to
  // examine, or "at end" when the cursor had run off the tree.
  bool saved_ = false;
  bool saved_at_end_ = false;
  std::string saved_key_;
  storage::RecordId saved_rid_ = storage::kInvalidRecordId;
  uint64_t keys_examined_ = 0;
  std::vector<bson::Value> decoded_;  // scratch
  /// Multikey indexes can emit a RecordId once per matching key; the scan
  /// deduplicates so FETCH sees each document once (MongoDB semantics).
  std::unordered_set<storage::RecordId> returned_rids_;
};

/// Fetches the document for each rid the child produces, counts it as
/// examined, and applies the residual filter (the $geoWithin refinement and
/// any predicates the index bounds did not cover).
class FetchStage : public PlanStage {
 public:
  FetchStage(const storage::RecordStore& records,
             std::unique_ptr<PlanStage> child, ExprPtr filter);

  State Work(storage::RecordId* rid_out,
             const bson::Document** doc_out) override;
  void AccumulateStats(ExecStats* stats) const override;
  std::string Summary() const override;
  ExplainNode Explain() const override;

 protected:
  PlanStage* child_stage() override { return child_.get(); }

 private:
  const storage::RecordStore& records_;
  std::unique_ptr<PlanStage> child_;
  ExprPtr filter_;
  uint64_t docs_examined_ = 0;
};

/// Full collection scan with a filter — the plan of last resort.
class CollScanStage : public PlanStage {
 public:
  CollScanStage(const storage::RecordStore& records, ExprPtr filter);

  State Work(storage::RecordId* rid_out,
             const bson::Document** doc_out) override;
  void AccumulateStats(ExecStats* stats) const override;
  std::string Summary() const override;
  ExplainNode Explain() const override;

 private:
  const storage::RecordStore& records_;
  ExprPtr filter_;
  storage::RecordId next_id_ = 1;
  uint64_t docs_examined_ = 0;
};

}  // namespace stix::query

#endif  // STIX_QUERY_PLAN_STAGE_H_
