#ifndef STIX_QUERY_BUCKET_UNPACK_H_
#define STIX_QUERY_BUCKET_UNPACK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "query/plan_stage.h"
#include "storage/bucket.h"

namespace stix::query {

/// Rewrites a point-level match expression into a predicate that is safe to
/// evaluate against *bucket documents* of the given layout: every bucket
/// containing at least one matching point satisfies the rewrite. Used for
/// index bounds, shard routing and the multi-plan candidates — never as the
/// final filter (BucketUnpackStage re-applies the exact point expression
/// after decompression).
///
/// The rewrite follows MongoDB's time-series $_internalUnpackBucket
/// predicate mapping, specialised to this engine's expression subset:
///  - time_field comparisons widen their lower bound by window_ms - 1
///    (a bucket's date carries the window start, and points lie in
///    [date, date + window)); $eq becomes the widened closed range.
///  - hilbert_field RangeSets widen each range's lower bound by
///    2^hilbert_shift - 1 (a bucket's hilbertIndex carries its cell base),
///    then re-merge overlaps so the result is again sorted and disjoint.
///  - $and maps over its children; anything else (geo predicates,
///    per-point fields, $or) is dropped — buckets cannot be filtered by
///    them before unpacking.
///
/// Returns nullptr when nothing routable survives (callers treat that as
/// match-all / broadcast).
ExprPtr WidenForBuckets(const ExprPtr& expr,
                        const storage::BucketLayout& layout);

/// The bucket-level pruning predicates BucketUnpackStage extracts from the
/// point expression once, at construction: checked against BucketMeta
/// before any column is touched.
struct BucketPruneSpec {
  /// Closed time bounds on the points (from time_field comparisons).
  std::optional<int64_t> min_ts;
  std::optional<int64_t> max_ts;
  /// Spatial bound: the query rect, or a polygon's bounding box.
  std::optional<geo::Rect> rect;
  /// Sorted disjoint closed hilbertIndex ranges (from a RangeSet).
  std::vector<std::pair<int64_t, int64_t>> hil_ranges;

  /// True iff this spec IS the whole point expression — every leaf was a
  /// conjunct the extraction captured losslessly (time cmp, rect on point
  /// locations, one hilbert RangeSet). Polygons capture only their bounding
  /// box, $or captures nothing; both leave exact false.
  bool exact = false;

  /// True iff a bucket with this metadata may contain a matching point.
  bool MayContain(const storage::BucketMeta& meta) const;

  /// True iff every point of a bucket with this metadata matches: the spec
  /// is exact and the metadata lies entirely inside its bounds. Lets the
  /// unpack stage skip the per-point filter for fully covered buckets (the
  /// whole-bucket analogue of an index range's covered interior).
  bool Covers(const storage::BucketMeta& meta) const;
};

/// Extracts the prunable conjuncts of `expr` (top-level $and walk, same
/// recognition rules as WidenForBuckets).
BucketPruneSpec ExtractBucketPredicates(const ExprPtr& expr,
                                        const storage::BucketLayout& layout);

/// MongoDB's $_internalUnpackBucket as a plan stage: pulls bucket documents
/// from its child (FETCH over the widened bounds, or COLLSCAN), prunes
/// whole buckets on their metadata (time extent, MBR, hilbert ranges),
/// decompresses the survivors and streams out the points that match the
/// exact point-level expression.
///
/// Decoded points live in a stage-owned arena that is never discarded while
/// the stage lives, so emitted document pointers obey the same borrowed-
/// pointer protocol as record-store documents — but they do NOT survive the
/// executor: plans containing this stage are marked transient_docs and the
/// executor materializes their results (see CandidatePlan).
///
/// Counter semantics: docs_examined stays 0 here (the child's FETCH/
/// COLLSCAN already counted each bucket load, keeping the explain
/// sum-over-tree invariant); buckets_pruned / points_unpacked are this
/// stage's own new explain fields.
class BucketUnpackStage : public PlanStage {
 public:
  BucketUnpackStage(std::unique_ptr<PlanStage> child, ExprPtr point_expr,
                    std::shared_ptr<const storage::BucketLayout> layout);

  State Work(storage::RecordId* rid_out,
             const bson::Document** doc_out) override;
  void AccumulateStats(ExecStats* stats) const override;
  std::string Summary() const override;
  ExplainNode Explain() const override;

  uint64_t buckets_pruned() const { return buckets_pruned_; }
  uint64_t points_unpacked() const { return points_unpacked_; }

 protected:
  PlanStage* child_stage() override { return child_.get(); }

 private:
  std::unique_ptr<PlanStage> child_;
  ExprPtr point_expr_;
  std::shared_ptr<const storage::BucketLayout> layout_;
  BucketPruneSpec prune_;

  /// Pointer-stable arena of every matching decoded point (deque: grows
  /// without relocation). Pending points are emitted one per Work() call.
  std::deque<bson::Document> arena_;
  size_t next_pending_ = 0;       ///< First arena entry not yet emitted.
  storage::RecordId pending_rid_ = storage::kInvalidRecordId;

  uint64_t buckets_pruned_ = 0;
  uint64_t points_unpacked_ = 0;
  uint64_t decode_errors_ = 0;
};

}  // namespace stix::query

#endif  // STIX_QUERY_BUCKET_UNPACK_H_
