#include "query/plan_stage.h"

#include <cassert>

#include "common/stopwatch.h"
#include "keystring/keystring.h"

namespace stix::query {

PlanStage::State PlanStage::WorkUnit(storage::RecordId* rid_out,
                                     const bson::Document** doc_out) {
  ++stage_works_;
  State state;
  if (timing_enabled_) {
    Stopwatch timer;
    state = Work(rid_out, doc_out);
    stage_time_nanos_ += static_cast<uint64_t>(timer.ElapsedNanos());
  } else {
    state = Work(rid_out, doc_out);
  }
  if (state == State::kAdvanced) ++stage_advanced_;
  return state;
}

void PlanStage::EnableTiming() {
  timing_enabled_ = true;
  if (PlanStage* child = child_stage()) child->EnableTiming();
}

void PlanStage::FillExplainBase(ExplainNode* node) const {
  node->works = stage_works_;
  node->advanced = stage_advanced_;
  if (timing_enabled_) {
    node->time_millis = static_cast<double>(stage_time_nanos_) / 1e6;
  }
}

PlanStage::NextResult PlanStage::Next(WorkItem* item, uint64_t* works,
                                      uint64_t works_budget) {
  for (;;) {
    if (works_budget != 0 && *works >= works_budget) {
      return NextResult::kBudget;
    }
    const State state = WorkUnit(&item->rid, &item->doc);
    ++*works;
    if (state == State::kAdvanced) return NextResult::kDoc;
    if (state == State::kEof) return NextResult::kEof;
  }
}

IndexScanStage::IndexScanStage(const index::Index& idx,
                               index::IndexBounds bounds)
    : index_(idx), bounds_(std::move(bounds)) {
  assert(bounds_.fields.size() == index_.descriptor().num_fields());
}

std::string IndexScanStage::BuildStartKey() const {
  keystring::Builder b;
  for (const index::FieldBounds& fb : bounds_.fields) {
    if (fb.full_range || fb.intervals.empty()) {
      b.AppendMinKey();
    } else {
      b.AppendValue(fb.intervals.front().lo);
    }
  }
  return std::move(b).Build();
}

PlanStage::State IndexScanStage::Work(storage::RecordId* rid_out,
                                      const bson::Document** doc_out) {
  *doc_out = nullptr;
  if (done_) return State::kEof;
  if (!initialized_) {
    cursor_ = index_.btree().SeekGE(BuildStartKey());
    initialized_ = true;
    return State::kNeedTime;
  }
  if (!cursor_.Valid()) {
    done_ = true;
    return State::kEof;
  }

  ++keys_examined_;
  const std::string& key = cursor_.key();
  if (!keystring::DecodeValues(key, &decoded_) ||
      decoded_.size() != bounds_.fields.size()) {
    // An index key this scan cannot interpret: skip it.
    cursor_.Next();
    return State::kNeedTime;
  }

  for (size_t i = 0; i < bounds_.fields.size(); ++i) {
    const index::BoundsCheck check =
        index::CheckBounds(bounds_.fields[i], decoded_[i]);
    if (check.kind == index::BoundsCheck::Kind::kInBounds) continue;

    keystring::Builder seek;
    if (check.kind == index::BoundsCheck::Kind::kSeekAhead) {
      // Jump to (prefix values..., next interval lo, -inf...).
      for (size_t j = 0; j < i; ++j) seek.AppendValue(decoded_[j]);
      seek.AppendValue(*check.seek_to);
      for (size_t j = i + 1; j < bounds_.fields.size(); ++j) {
        seek.AppendMinKey();
      }
    } else {  // kExhausted
      if (i == 0) {
        // Leading field past its last interval: scan is complete.
        done_ = true;
        return State::kEof;
      }
      // Skip every remaining key sharing the prefix decoded_[0..i-1].
      for (size_t j = 0; j < i; ++j) seek.AppendValue(decoded_[j]);
      seek.AppendMaxKey();
    }
    const std::string seek_key = std::move(seek).Build();
    if (seek_key <= key) {
      // Defensive progress guarantee; should not normally trigger.
      cursor_.Next();
    } else {
      cursor_ = index_.btree().SeekGE(seek_key);
    }
    return State::kNeedTime;
  }

  const storage::RecordId rid = cursor_.rid();
  cursor_.Next();
  if (index_.is_multikey() && !returned_rids_.insert(rid).second) {
    return State::kNeedTime;  // already emitted via another key
  }
  *rid_out = rid;
  return State::kAdvanced;
}

void IndexScanStage::SaveState() {
  saved_ = false;
  if (!initialized_ || done_) return;  // nothing borrowed from the tree yet
  saved_at_end_ = !cursor_.Valid();
  if (!saved_at_end_) {
    saved_key_ = cursor_.key();
    saved_rid_ = cursor_.rid();
  }
  cursor_ = storage::BTree::Cursor();  // drop the leaf pointer
  saved_ = true;
}

void IndexScanStage::RestoreState() {
  if (!saved_) return;
  saved_ = false;
  if (saved_at_end_) return;  // an invalid cursor stays EOF
  // First entry at or after the saved (key, rid): removed entries are
  // stepped over, entries inserted behind the scan point stay behind it.
  cursor_ = index_.btree().SeekGE(saved_key_, saved_rid_);
}

void IndexScanStage::AccumulateStats(ExecStats* stats) const {
  stats->keys_examined += keys_examined_;
}

std::string IndexScanStage::Summary() const {
  return "IXSCAN " + index_.descriptor().KeyPatternString();
}

ExplainNode IndexScanStage::Explain() const {
  ExplainNode node;
  node.stage = "IXSCAN";
  node.index_name = index_.descriptor().name();
  node.key_pattern = index_.descriptor().KeyPatternString();
  node.bounds = bounds_.DebugString();
  node.keys_examined = keys_examined_;
  FillExplainBase(&node);
  return node;
}

FetchStage::FetchStage(const storage::RecordStore& records,
                       std::unique_ptr<PlanStage> child, ExprPtr filter)
    : records_(records), child_(std::move(child)), filter_(std::move(filter)) {}

PlanStage::State FetchStage::Work(storage::RecordId* rid_out,
                                  const bson::Document** doc_out) {
  storage::RecordId rid = storage::kInvalidRecordId;
  const bson::Document* unused = nullptr;
  const State child_state = child_->WorkUnit(&rid, &unused);
  if (child_state != State::kAdvanced) return child_state;

  const bson::Document* doc = records_.Get(rid);
  if (doc == nullptr) return State::kNeedTime;  // record vanished (migration)
  ++docs_examined_;
  if (filter_ != nullptr && !filter_->Matches(*doc)) return State::kNeedTime;
  *rid_out = rid;
  *doc_out = doc;
  return State::kAdvanced;
}

void FetchStage::AccumulateStats(ExecStats* stats) const {
  stats->docs_examined += docs_examined_;
  child_->AccumulateStats(stats);
}

std::string FetchStage::Summary() const {
  return "FETCH -> " + child_->Summary();
}

ExplainNode FetchStage::Explain() const {
  ExplainNode node;
  node.stage = "FETCH";
  if (filter_ != nullptr) node.filter = filter_->DebugString();
  node.docs_examined = docs_examined_;
  FillExplainBase(&node);
  node.children.push_back(child_->Explain());
  return node;
}

CollScanStage::CollScanStage(const storage::RecordStore& records,
                             ExprPtr filter)
    : records_(records), filter_(std::move(filter)) {}

PlanStage::State CollScanStage::Work(storage::RecordId* rid_out,
                                     const bson::Document** doc_out) {
  *doc_out = nullptr;
  if (next_id_ > records_.max_record_id()) return State::kEof;
  const storage::RecordId rid = next_id_++;
  const bson::Document* doc = records_.Get(rid);
  if (doc == nullptr) return State::kNeedTime;
  ++docs_examined_;
  if (filter_ != nullptr && !filter_->Matches(*doc)) return State::kNeedTime;
  *rid_out = rid;
  *doc_out = doc;
  return State::kAdvanced;
}

void CollScanStage::AccumulateStats(ExecStats* stats) const {
  stats->docs_examined += docs_examined_;
}

std::string CollScanStage::Summary() const { return "COLLSCAN"; }

ExplainNode CollScanStage::Explain() const {
  ExplainNode node;
  node.stage = "COLLSCAN";
  if (filter_ != nullptr) node.filter = filter_->DebugString();
  node.docs_examined = docs_examined_;
  FillExplainBase(&node);
  return node;
}

}  // namespace stix::query
