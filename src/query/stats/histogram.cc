#include "query/stats/histogram.h"

#include <algorithm>
#include <limits>

namespace stix::query::stats {

void EquiDepthHistogram::Build(std::vector<int64_t> values,
                               size_t max_buckets) {
  buckets_.clear();
  built_ = true;
  mutations_ = 0;
  total_ = values.size();
  built_total_ = values.size();
  if (values.empty()) {
    min_ = 0;
    return;
  }
  std::sort(values.begin(), values.end());
  min_ = values.front();
  if (max_buckets == 0) max_buckets = 1;

  const size_t n = values.size();
  const double depth =
      static_cast<double>(n) / static_cast<double>(max_buckets);
  // Max-diff refinement window around each equi-depth cut: within +/- a
  // quarter of a bucket of the ideal quantile position, cut at the largest
  // adjacent-value gap. Heavy duplicate runs are never split (a boundary
  // value belongs to exactly one bucket), so a bucket absorbing one hot
  // value can exceed the ideal depth — the equi-depth invariant is "no
  // bucket exceeds depth + its largest duplicate run", which the property
  // tests pin.
  const size_t window = std::max<size_t>(1, static_cast<size_t>(depth / 4));
  size_t begin = 0;  // first value index of the open bucket
  for (size_t b = 0; b < max_buckets && begin < n; ++b) {
    size_t cut;  // index of the last value in this bucket
    if (b + 1 == max_buckets) {
      cut = n - 1;
    } else {
      const size_t pos =
          static_cast<size_t>(depth * static_cast<double>(b + 1));
      size_t ideal = std::min(n - 1, pos == 0 ? 0 : pos - 1);
      if (ideal < begin) ideal = begin;
      size_t lo = ideal > begin + window ? ideal - window : begin;
      size_t hi = std::min(n - 2, ideal + window);
      if (lo > hi) lo = hi;
      // Largest gap between values[j] and values[j + 1] in the window; ties
      // break toward the ideal equi-depth position.
      cut = std::min(ideal, n - 2);
      uint64_t best_gap = 0;
      for (size_t j = lo; j <= hi && j + 1 < n; ++j) {
        const uint64_t gap = static_cast<uint64_t>(values[j + 1]) -
                             static_cast<uint64_t>(values[j]);
        if (gap > best_gap) {
          best_gap = gap;
          cut = j;
        }
      }
      // Never split a duplicate run: extend the cut through equal values.
      while (cut + 1 < n && values[cut + 1] == values[cut]) ++cut;
      if (cut + 1 >= n) cut = n - 1;
    }
    if (cut < begin) cut = begin;
    buckets_.push_back(
        Bucket{values[cut], static_cast<uint64_t>(cut - begin + 1)});
    begin = cut + 1;
  }
  // Rounding in the cut positions can leave a tail; fold it into the last
  // bucket so counts always sum to n.
  if (begin < n) {
    buckets_.back().upper = values[n - 1];
    buckets_.back().count += static_cast<uint64_t>(n - begin);
  }
}

size_t EquiDepthHistogram::BucketFor(int64_t v) const {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), v,
      [](const Bucket& b, int64_t value) { return b.upper < value; });
  if (it == buckets_.end()) return buckets_.size() - 1;
  return static_cast<size_t>(it - buckets_.begin());
}

void EquiDepthHistogram::Add(int64_t v) {
  ++mutations_;
  ++total_;
  if (buckets_.empty()) {
    min_ = v;
    buckets_.push_back(Bucket{v, 1});
    return;
  }
  if (v < min_) min_ = v;
  if (v > buckets_.back().upper) {
    buckets_.back().upper = v;  // stretch the top bucket
    ++buckets_.back().count;
    return;
  }
  ++buckets_[BucketFor(v)].count;
}

void EquiDepthHistogram::Remove(int64_t v) {
  if (buckets_.empty()) return;
  ++mutations_;
  if (total_ > 0) --total_;
  Bucket& b = buckets_[BucketFor(v)];
  if (b.count > 0) --b.count;
}

double EquiDepthHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (buckets_.empty() || total_ == 0 || hi < lo) return 0.0;
  double est = 0.0;
  int64_t span_lo = min_;
  for (const Bucket& b : buckets_) {
    const int64_t span_hi = b.upper;
    if (span_hi >= lo && span_lo <= hi) {
      const int64_t olo = std::max(span_lo, lo);
      const int64_t ohi = std::min(span_hi, hi);
      // Continuous-values assumption inside a bucket. Width arithmetic in
      // unsigned space: spans can exceed int64 range (hilbert domains).
      const uint64_t width =
          static_cast<uint64_t>(span_hi) - static_cast<uint64_t>(span_lo) + 1;
      const uint64_t overlap =
          static_cast<uint64_t>(ohi) - static_cast<uint64_t>(olo) + 1;
      est += static_cast<double>(b.count) *
             (static_cast<double>(overlap) / static_cast<double>(width));
    }
    if (span_lo > hi) break;
    span_lo = span_hi + 1;
    if (span_hi == std::numeric_limits<int64_t>::max()) break;
  }
  return std::min(est, static_cast<double>(total_));
}

double EquiDepthHistogram::Drift() const {
  if (!built_) {
    return total_ > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  const uint64_t base = std::max<uint64_t>(1, built_total_);
  return static_cast<double>(mutations_) / static_cast<double>(base);
}

}  // namespace stix::query::stats
