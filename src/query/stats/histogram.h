#ifndef STIX_QUERY_STATS_HISTOGRAM_H_
#define STIX_QUERY_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stix::query::stats {

/// Online equi-depth histogram over one int64-valued document path (date
/// millis, hilbertIndex cells, GeoHash cells). Built from a sorted sample of
/// the live values with max-diff boundary placement (MongoDB CE's
/// buildHistogram idiom: cut points prefer the largest value gaps near each
/// equi-depth quantile, so skewed clusters land inside buckets instead of
/// straddling them), then maintained incrementally: Add/Remove binary-search
/// the covering bucket and adjust its count. The boundary set is frozen
/// between builds — a drift counter tracks how many mutations the frozen
/// boundaries have absorbed, and the owner rebuilds lazily once drift
/// crosses its threshold (see ShardStatistics).
///
/// Estimates use the continuous-value assumption inside a bucket: a query
/// range takes a bucket's count in proportion to the overlapped fraction of
/// its key span. Not thread-safe; the owning ShardStatistics locks.
class EquiDepthHistogram {
 public:
  /// One bucket: counts values in (prev bucket's upper, upper] — the first
  /// bucket spans [min, upper].
  struct Bucket {
    int64_t upper = 0;
    uint64_t count = 0;
  };

  /// Replaces boundaries and counts from a full sample of the live values
  /// (unsorted is fine; Build sorts). Resets the drift counter.
  void Build(std::vector<int64_t> values, size_t max_buckets = 64);

  /// Incremental maintenance against the frozen boundaries. Values outside
  /// [min, max] stretch the edge buckets. Each call counts as one unit of
  /// drift.
  void Add(int64_t v);
  void Remove(int64_t v);

  /// Expected number of live values in the closed range [lo, hi].
  /// 0 for an empty histogram.
  double EstimateRange(int64_t lo, int64_t hi) const;

  /// Live value count (exact: build count + adds - removes).
  uint64_t total() const { return total_; }

  bool built() const { return built_; }
  bool empty() const { return total_ == 0; }
  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const {
    return buckets_.empty() ? min_ : buckets_.back().upper;
  }

  /// Mutations absorbed since the last Build.
  uint64_t mutations_since_build() const { return mutations_; }

  /// Drift of the frozen boundaries: mutations since build relative to the
  /// population the boundaries were built from. 0 right after a build;
  /// grows with every Add/Remove. An unbuilt histogram with data pending
  /// reports infinite drift (forces the first build).
  double Drift() const;

 private:
  /// Index of the bucket whose span covers v (first bucket with upper >= v),
  /// clamped to the last bucket.
  size_t BucketFor(int64_t v) const;

  std::vector<Bucket> buckets_;
  int64_t min_ = 0;
  bool built_ = false;
  uint64_t total_ = 0;
  uint64_t built_total_ = 0;
  uint64_t mutations_ = 0;
};

}  // namespace stix::query::stats

#endif  // STIX_QUERY_STATS_HISTOGRAM_H_
