#include "query/stats/shard_stats.h"

#include <algorithm>
#include <cmath>

#include "storage/bucket.h"

namespace stix::query::stats {

namespace {

std::optional<int64_t> Int64At(const bson::Document& doc,
                               std::string_view field) {
  const bson::Value* v = doc.Get(field);
  if (v == nullptr) return std::nullopt;
  switch (v->type()) {
    case bson::Type::kDateTime:
      return v->AsDateTime();
    case bson::Type::kInt64:
      return v->AsInt64();
    case bson::Type::kInt32:
      return static_cast<int64_t>(v->AsInt32());
    default:
      return std::nullopt;
  }
}

}  // namespace

ObservedValues ExtractStatsValues(const bson::Document& doc,
                                  const geo::GeoHash* geohash) {
  ObservedValues out;
  out.date = Int64At(doc, ShardStatistics::kDatePath);
  out.hilbert = Int64At(doc, ShardStatistics::kHilbertPath);
  if (storage::IsBucketDocument(doc)) {
    out.is_bucket = true;
    auto meta = storage::ParseBucketMeta(doc);
    if (meta.ok()) out.points = std::max<uint32_t>(1, meta->num_points);
    // Bucket documents have no location point; the 2dsphere key space is
    // not observable from bucket-level fields.
    return out;
  }
  if (geohash != nullptr) {
    const bson::Value* loc = doc.Get(ShardStatistics::kLocationPath);
    double lon = 0.0, lat = 0.0;
    if (loc != nullptr && bson::ExtractGeoJsonPoint(*loc, &lon, &lat)) {
      out.geocell = static_cast<int64_t>(geohash->Encode(lon, lat));
    }
  }
  return out;
}

void ShardStatistics::Observe(const ObservedValues& values, int delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta > 0) {
    ++docs_;
    points_ += values.points;
    if (values.is_bucket) ++buckets_;
  } else if (delta < 0) {
    if (docs_ > 0) --docs_;
    points_ -= std::min<uint64_t>(points_, values.points);
    if (values.is_bucket && buckets_ > 0) --buckets_;
  }
  const auto touch = [&](const char* path, std::optional<int64_t> v) {
    if (!v) return;
    EquiDepthHistogram& h = histograms_[path];
    if (delta > 0) {
      h.Add(*v);
    } else if (delta < 0) {
      h.Remove(*v);
    }
  };
  touch(kDatePath, values.date);
  touch(kHilbertPath, values.hilbert);
  touch(kLocationPath, values.geocell);
}

void ShardStatistics::MarkStale() {
  std::lock_guard<std::mutex> lock(mu_);
  stale_ = true;
}

bool ShardStatistics::NeedsRebuildLocked() const {
  if (docs_ == 0) return false;
  if (stale_ || !built_) return true;
  for (const auto& [path, h] : histograms_) {
    if (h.Drift() > kMaxDrift) return true;
  }
  return false;
}

bool ShardStatistics::NeedsRebuild() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NeedsRebuildLocked();
}

void ShardStatistics::Rebuild(RebuildSample sample, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return;  // a racing rebuild already landed
  ++generation_;
  ++rebuilds_;
  histograms_.clear();
  if (!sample.dates.empty()) {
    histograms_[kDatePath].Build(std::move(sample.dates), kHistogramBuckets);
  }
  if (!sample.hilberts.empty()) {
    histograms_[kHilbertPath].Build(std::move(sample.hilberts),
                                    kHistogramBuckets);
  }
  if (!sample.geocells.empty()) {
    histograms_[kLocationPath].Build(std::move(sample.geocells),
                                     kHistogramBuckets);
  }
  docs_ = sample.num_docs;
  points_ = sample.num_points;
  buckets_ = sample.num_buckets;
  stale_ = false;
  built_ = true;
}

uint64_t ShardStatistics::rebuild_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint64_t ShardStatistics::rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebuilds_;
}

bool ShardStatistics::ReliableForEstimation() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_ == 0) return true;  // empty shard: every estimate is exactly 0
  return built_ && !NeedsRebuildLocked();
}

double ShardStatistics::EstimateRange(const std::string& path, int64_t lo,
                                      int64_t hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_ == 0) return 0.0;
  const auto it = histograms_.find(path);
  if (it == histograms_.end()) return -1.0;
  return it->second.EstimateRange(lo, hi);
}

double ShardStatistics::EstimateIntervalSum(
    const std::string& path,
    const std::vector<std::pair<int64_t, int64_t>>& ranges) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_ == 0) return 0.0;
  const auto it = histograms_.find(path);
  if (it == histograms_.end()) return -1.0;
  const EquiDepthHistogram& h = it->second;
  double est = 0.0;
  for (const auto& [lo, hi] : ranges) est += h.EstimateRange(lo, hi);
  return std::min(est, static_cast<double>(h.total()));
}

uint64_t ShardStatistics::total_docs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_;
}

uint64_t ShardStatistics::total_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

double ShardStatistics::avg_points_per_doc() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_ == 0) return 1.0;
  return static_cast<double>(points_) / static_cast<double>(docs_);
}

}  // namespace stix::query::stats
