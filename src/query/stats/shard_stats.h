#ifndef STIX_QUERY_STATS_SHARD_STATS_H_
#define STIX_QUERY_STATS_SHARD_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bson/document.h"
#include "geo/geohash.h"
#include "query/stats/histogram.h"

namespace stix::query::stats {

/// The int64 values one stored document contributes to the per-path
/// histograms, plus the point count it represents (1 for row documents, the
/// decoded point count for bucket documents).
struct ObservedValues {
  std::optional<int64_t> date;
  std::optional<int64_t> hilbert;
  std::optional<int64_t> geocell;
  uint32_t points = 1;
  bool is_bucket = false;
};

/// Extracts the statistics values of one stored document: the date millis
/// (DateTime or integer), the hilbertIndex cell, and — when `geohash` is
/// non-null — the GeoHash cell of the location point (the value space the
/// 2dsphere index keys scan over). Bucket documents contribute their
/// bucket-level date (window start) and hilbertIndex (cell base) fields and
/// their decoded point count; they carry no location point.
ObservedValues ExtractStatsValues(const bson::Document& doc,
                                  const geo::GeoHash* geohash);

/// Everything a ShardStatistics rebuild needs, collected by the owner under
/// its data lock (the stats layer never walks storage itself).
struct RebuildSample {
  std::vector<int64_t> dates;
  std::vector<int64_t> hilberts;
  std::vector<int64_t> geocells;
  uint64_t num_docs = 0;
  uint64_t num_points = 0;
  uint64_t num_buckets = 0;
};

/// Per-shard online statistics: equi-depth histograms over the `date`,
/// `hilbertIndex` and `location` (GeoHash cell) paths plus collection /
/// bucket-layout counts. Maintained incrementally on every insert and
/// delete (Observe), marked stale by chunk migrations (MarkStale), and
/// rebuilt lazily — the owning shard calls NeedsRebuild() at query entry
/// and hands a fresh RebuildSample to Rebuild() when the frozen histogram
/// boundaries have drifted too far.
///
/// Thread-safe: all methods lock the internal mutex. Like the plan cache,
/// this is execution-state, not collection-state — readers holding the
/// shard's data lock shared may mutate it.
class ShardStatistics {
 public:
  /// Histogram paths (the document schema's field names; bucket documents
  /// reuse the same top-level names for their widened values).
  static constexpr char kDatePath[] = "date";
  static constexpr char kHilbertPath[] = "hilbertIndex";
  static constexpr char kLocationPath[] = "location";

  /// Boundary-drift threshold beyond which estimates are considered
  /// unreliable and a rebuild is requested.
  static constexpr double kMaxDrift = 0.25;

  /// Buckets per histogram. Finer than the library default (64): the
  /// worst estimation errors are query bounds clipping a bucket mid-span
  /// (the interpolation error is ~half a bucket's population), and at
  /// bench scale (~20k values/shard) 256 buckets keep that under ~40
  /// values while the resident cost stays trivial (3 paths x 4 KB).
  static constexpr size_t kHistogramBuckets = 256;

  /// Incremental maintenance hook (insert: delta = +1, delete: delta = -1).
  /// Called by the shard under its exclusive data lock.
  void Observe(const ObservedValues& values, int delta);

  /// Flags the statistics as stale (chunk migration changed the shard's
  /// data distribution); the next NeedsRebuild() returns true.
  void MarkStale();

  /// True when estimates should not be trusted until a rebuild: never
  /// built, explicitly marked stale, or any histogram drifted past
  /// kMaxDrift. False for an empty shard (nothing to estimate).
  bool NeedsRebuild() const;

  /// Installs a freshly collected sample, clearing staleness and drift.
  /// `generation` guards against racing rebuilds installing the same work
  /// twice: pass the value of rebuild_generation() read *before* collecting
  /// the sample — a stale generation is discarded.
  void Rebuild(RebuildSample sample, uint64_t generation);
  uint64_t rebuild_generation() const;
  uint64_t rebuilds() const;

  /// True when the histograms are built and fresh enough for cost-based
  /// plan selection (the executor's gate).
  bool ReliableForEstimation() const;

  /// Estimated number of stored documents whose `path` value lies in the
  /// closed range [lo, hi]; negative when no histogram exists for the path.
  double EstimateRange(const std::string& path, int64_t lo, int64_t hi) const;

  /// Sum of EstimateRange over an interval set (one lock acquisition —
  /// hil* coverings carry thousands of ranges). Negative when no histogram
  /// exists for the path.
  double EstimateIntervalSum(
      const std::string& path,
      const std::vector<std::pair<int64_t, int64_t>>& ranges) const;

  uint64_t total_docs() const;
  uint64_t total_points() const;

  /// Mean decoded points per stored document (1.0 for row collections,
  /// the mean bucket fill for bucketed ones).
  double avg_points_per_doc() const;

 private:
  bool NeedsRebuildLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, EquiDepthHistogram> histograms_;
  uint64_t docs_ = 0;
  uint64_t points_ = 0;
  uint64_t buckets_ = 0;
  bool stale_ = false;
  bool built_ = false;
  uint64_t generation_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace stix::query::stats

#endif  // STIX_QUERY_STATS_SHARD_STATS_H_
