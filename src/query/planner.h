#ifndef STIX_QUERY_PLANNER_H_
#define STIX_QUERY_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index_catalog.h"
#include "query/plan_stage.h"
#include "storage/bucket.h"

namespace stix::query {

/// Cost-model description of how a candidate accesses data, recorded by
/// the planner so the cost model (query/cost.h) never has to walk the
/// stage tree: the access shape plus — for IXSCAN plans — a copy of the
/// scan bounds and the index's field paths.
struct PlanAccess {
  bool collscan = false;  ///< Root access is a collection scan.
  bool bucketed = false;  ///< A BUCKET_UNPACK stage wraps the access path.
  /// IXSCAN only: the bounds handed to IndexScanStage, in index field
  /// order, with the matching dotted paths and 2dsphere flags.
  index::IndexBounds bounds;
  std::vector<std::string> field_paths;
  std::vector<bool> field_is_geo;
};

/// One runnable candidate plan.
struct CandidatePlan {
  std::unique_ptr<PlanStage> root;
  std::string summary;
  std::string index_name;  ///< Empty for COLLSCAN.
  /// True when the plan emits documents owned by its own stages (a
  /// BUCKET_UNPACK arena) rather than by the record store: results must be
  /// materialized before the executor dies (see ExecutionResult::owned).
  bool transient_docs = false;
  PlanAccess access;
};

/// What the planner needs to know beyond the collection itself.
struct PlanningContext {
  /// Non-null when the collection stores bucket documents and the query is
  /// a *point-level* expression: plans become
  /// BUCKET_UNPACK -> FETCH -> IXSCAN over the widened bounds (or
  /// BUCKET_UNPACK -> COLLSCAN). Null plans row-layout, which is also how
  /// raw bucket scans (routing metadata, deletes) are planned.
  std::shared_ptr<const storage::BucketLayout> bucket_layout;
};

/// Generates candidate plans for a match expression against a collection's
/// indexes, MongoDB-style:
///  - an index is usable iff its *leading* field is constrained (an interval
///    set for an ascending field, a $geoWithin for a 2dsphere field) —
///    compound indexes are prefix-first (paper Section 3.1);
///  - every usable index yields an IXSCAN+FETCH(filter) candidate whose
///    bounds cover as many fields as have constraints;
///  - if no index is usable, the single candidate is a filtered COLLSCAN.
class Planner {
 public:
  static std::vector<CandidatePlan> Plan(const storage::RecordStore& records,
                                         const index::IndexCatalog& catalog,
                                         const ExprPtr& expr,
                                         const PlanningContext& ctx = {});
};

}  // namespace stix::query

#endif  // STIX_QUERY_PLANNER_H_
