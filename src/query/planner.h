#ifndef STIX_QUERY_PLANNER_H_
#define STIX_QUERY_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index_catalog.h"
#include "query/plan_stage.h"

namespace stix::query {

/// One runnable candidate plan.
struct CandidatePlan {
  std::unique_ptr<PlanStage> root;
  std::string summary;
  std::string index_name;  ///< Empty for COLLSCAN.
};

/// Generates candidate plans for a match expression against a collection's
/// indexes, MongoDB-style:
///  - an index is usable iff its *leading* field is constrained (an interval
///    set for an ascending field, a $geoWithin for a 2dsphere field) —
///    compound indexes are prefix-first (paper Section 3.1);
///  - every usable index yields an IXSCAN+FETCH(filter) candidate whose
///    bounds cover as many fields as have constraints;
///  - if no index is usable, the single candidate is a filtered COLLSCAN.
class Planner {
 public:
  static std::vector<CandidatePlan> Plan(const storage::RecordStore& records,
                                         const index::IndexCatalog& catalog,
                                         const ExprPtr& expr);
};

}  // namespace stix::query

#endif  // STIX_QUERY_PLANNER_H_
