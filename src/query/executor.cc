#include "query/executor.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace stix::query {
namespace {

// Places a plan-level estimate onto the stages it predicts: est_keys on the
// first IXSCAN in the tree, est_docs on the first FETCH or COLLSCAN (the
// stage whose docs_examined counter the estimate targets).
void AnnotateEstimates(ExplainNode* node, const PlanEstimate& est,
                       bool* keys_done, bool* docs_done) {
  if (node->stage == "IXSCAN" && !*keys_done) {
    node->est_keys = est.keys;
    *keys_done = true;
  }
  if ((node->stage == "FETCH" || node->stage == "COLLSCAN") && !*docs_done) {
    node->est_docs = est.docs;
    *docs_done = true;
  }
  for (ExplainNode& child : node->children) {
    AnnotateEstimates(&child, est, keys_done, docs_done);
  }
}

}  // namespace

// Fires when Prepare finds a usable cached plan: the plan is abandoned as
// if its works budget blew on the first pull, forcing the mid-stream replan
// path (eviction + fresh multi-planner race). Results must be unaffected.
STIX_FAIL_POINT_DEFINE(planExecutorReplan);

const char* PlannedByName(PlannedBy p) {
  switch (p) {
    case PlannedBy::kNone:
      return "none";
    case PlannedBy::kSingle:
      return "single";
    case PlannedBy::kCache:
      return "cache";
    case PlannedBy::kCost:
      return "cost";
    case PlannedBy::kRace:
      return "race";
  }
  return "none";
}

PlanExecutor::PlanExecutor(const storage::RecordStore& records,
                           const index::IndexCatalog& catalog, ExprPtr expr,
                           const ExecutorOptions& options, PlanCache* cache,
                           uint64_t limit)
    : records_(records),
      catalog_(catalog),
      expr_(std::move(expr)),
      options_(options),
      cache_(cache),
      limit_(limit) {}

// Replays a cached plan under the replanning works cap, buffering results.
// Returns true when the result set is complete (EOF, or the pushed-down
// limit satisfied) — false means the budget blew and the shape must be
// re-raced.
bool PlanExecutor::DrainCachedWithCap(Racer* racer, uint64_t cap) {
  WorkItem item;
  for (;;) {
    if (limit_ != 0 && racer->docs.size() >= limit_) return true;
    const PlanStage::NextResult r =
        racer->plan->root->Next(&item, &racer->works, cap);
    if (r == PlanStage::NextResult::kBudget) return false;
    if (r == PlanStage::NextResult::kEof) {
      racer->eof = true;
      return true;
    }
    racer->docs.push_back(item.doc);
    racer->rids.push_back(item.rid);
  }
}

// Races all candidates (MongoDB's multi-planner trial) and returns the
// winner, which may be partially or fully executed.
PlanExecutor::Racer* PlanExecutor::RunTrial() {
  uint64_t budget = options_.trial_works;
  if (budget == 0) {
    budget = std::max<uint64_t>(10000, records_.num_records() * 3 / 10);
  }
  // The pushed-down limit caps the trial's result target: once any plan can
  // satisfy the whole query there is nothing left to race for.
  uint64_t target = options_.trial_results;
  if (limit_ != 0 && limit_ < target) target = limit_;
  bool trial_over = false;
  while (!trial_over) {
    trial_over = true;
    for (Racer& racer : racers_) {
      if (racer.eof || racer.works >= budget) continue;
      trial_over = false;
      storage::RecordId rid;
      const bson::Document* doc;
      const PlanStage::State state = racer.plan->root->WorkUnit(&rid, &doc);
      ++racer.works;
      if (state == PlanStage::State::kEof) {
        racer.eof = true;
      } else if (state == PlanStage::State::kAdvanced) {
        racer.docs.push_back(doc);
        racer.rids.push_back(rid);
        if (racer.docs.size() >= target) {
          return &racer;
        }
      }
    }
  }
  // Most results; tie broken by least work done (cheapest progress).
  Racer* winner = &racers_[0];
  for (Racer& racer : racers_) {
    if (racer.docs.size() > winner->docs.size() ||
        (racer.docs.size() == winner->docs.size() &&
         racer.works < winner->works)) {
      winner = &racer;
    }
  }
  return winner;
}

void PlanExecutor::Prepare() {
  const auto apply_stage_timing = [this] {
    if (!options_.stage_timing) return;
    for (CandidatePlan& plan : candidates_) plan.root->EnableTiming();
  };
  PlanningContext ctx;
  if (!options_.raw_buckets) ctx.bucket_layout = options_.bucket_layout;
  candidates_ = Planner::Plan(records_, catalog_, expr_, ctx);
  apply_stage_timing();
  num_candidates_ = static_cast<int>(candidates_.size());
  STIX_METRIC_COUNTER(plans_total, "planner.plans_total");
  plans_total.Increment();

  // Fast path: a cached plan for this query shape, bounded by the
  // replanning budget.
  if (cache_ != nullptr && candidates_.size() > 1) {
    shape_ = MakeShape();
    if (const std::optional<PlanCacheEntry> entry = cache_->Lookup(shape_)) {
      CandidatePlan* cached_plan = nullptr;
      for (CandidatePlan& plan : candidates_) {
        if (plan.index_name == entry->index_name) {
          cached_plan = &plan;
          break;
        }
      }
      if (cached_plan != nullptr) {
        const uint64_t cap = std::max<uint64_t>(
            options_.replan_min_works,
            static_cast<uint64_t>(options_.replan_factor *
                                  static_cast<double>(entry->works)));
        const bool forced_replan =
            planExecutorReplan.Evaluate().has_value();
        if (!forced_replan) {
          racers_.push_back(Racer{cached_plan, {}, {}, 0, false});
          if (DrainCachedWithCap(&racers_.back(), cap)) {
            winner_ = &racers_.back();
            from_plan_cache_ = true;
            planned_by_ = PlannedBy::kCache;
            phase_ = Phase::kBuffer;
            return;
          }
        }
        // Budget blown: evict and replan from scratch with fresh plan
        // stages (MongoDB's replanning). The racer and its plan pointer
        // must die before the candidate vector is replaced.
        cache_->Evict(shape_);
        STIX_METRIC_COUNTER(replans, "executor.replans");
        replans.Increment();
        replanned_ = true;
        racers_.clear();
        candidates_ = Planner::Plan(records_, catalog_, expr_, ctx);
        apply_stage_timing();
      }
    }
  }

  // Cost-based selection: estimate every candidate from the shard's
  // histograms and pick outright when decisive, skipping the trial race.
  // Skipped after a cache replan — a shape whose cached plan just blew its
  // budget is exactly where the estimates have been misleading; let the
  // race re-measure reality. A cost-picked plan still runs under a works
  // cap derived from its own estimate, so a bad estimate costs at most
  // replan_factor x the predicted work before the race takes over.
  if (candidates_.size() > 1 && !replanned_ &&
      options_.plan_selection == PlanSelectionMode::kCost &&
      options_.shard_stats != nullptr) {
    if (!options_.shard_stats->ReliableForEstimation()) {
      STIX_METRIC_COUNTER(stale_stats, "planner.stale_stats");
      stale_stats.Increment();
      STIX_METRIC_COUNTER(fallbacks, "planner.estimate_fallbacks");
      fallbacks.Increment();
    } else {
      PlanChoice choice = ChoosePlan(candidates_, *options_.shard_stats,
                                     options_.cost_confidence_margin);
      estimates_ = std::move(choice.estimates);
      if (choice.winner >= 0) {
        CandidatePlan* pick = &candidates_[static_cast<size_t>(choice.winner)];
        const double est_cost = estimates_[choice.winner].cost;
        const uint64_t cap = std::max<uint64_t>(
            options_.replan_min_works,
            static_cast<uint64_t>(options_.replan_factor * est_cost));
        racers_.push_back(Racer{pick, {}, {}, 0, false});
        if (DrainCachedWithCap(&racers_.back(), cap)) {
          winner_ = &racers_.back();
          planned_by_ = PlannedBy::kCost;
          STIX_METRIC_COUNTER(estimated, "planner.plans_estimated");
          estimated.Increment();
          phase_ = Phase::kBuffer;
          return;
        }
        // The pick blew its cap: the estimate missed badly. Record the
        // miss and fall back to a fresh race (the partially-run stages
        // cannot be reused — rebuild the candidates).
        STIX_METRIC_COUNTER(misses, "planner.estimate_misses");
        misses.Increment();
        STIX_METRIC_COUNTER(fallbacks, "planner.estimate_fallbacks");
        fallbacks.Increment();
        estimates_.clear();
        racers_.clear();
        candidates_ = Planner::Plan(records_, catalog_, expr_, ctx);
        apply_stage_timing();
      } else {
        STIX_METRIC_COUNTER(fallbacks, "planner.estimate_fallbacks");
        fallbacks.Increment();
      }
    }
  }

  racers_.reserve(candidates_.size());
  for (CandidatePlan& plan : candidates_) {
    racers_.push_back(Racer{&plan, {}, {}, 0, false});
  }
  winner_ = &racers_[0];
  raced_ = racers_.size() > 1;
  if (raced_) {
    winner_ = RunTrial();
    planned_by_ = PlannedBy::kRace;
    STIX_METRIC_COUNTER(raced, "planner.plans_raced");
    raced.Increment();
  } else {
    planned_by_ = PlannedBy::kSingle;
  }
  phase_ = Phase::kBuffer;
}

bool PlanExecutor::Next(storage::RecordId* rid_out,
                        const bson::Document** doc_out) {
  if (phase_ == Phase::kInit) Prepare();
  if (phase_ == Phase::kDone) return false;
  if (limit_ != 0 && returned_ >= limit_) {
    Finish();
    return false;
  }
  if (phase_ == Phase::kBuffer) {
    // Replay what the trial (or cached drain) already produced.
    if (buffer_pos_ < winner_->docs.size()) {
      *rid_out = winner_->rids[buffer_pos_];
      *doc_out = winner_->docs[buffer_pos_];
      ++buffer_pos_;
      ++returned_;
      return true;
    }
    phase_ = Phase::kStream;
  }
  if (winner_->eof) {
    Finish();
    return false;
  }
  WorkItem item;
  const PlanStage::NextResult r =
      winner_->plan->root->Next(&item, &winner_->works);
  if (r == PlanStage::NextResult::kEof) {
    winner_->eof = true;
    Finish();
    return false;
  }
  *rid_out = item.rid;
  *doc_out = item.doc;
  ++returned_;
  return true;
}

void PlanExecutor::SaveState() {
  if (phase_ == Phase::kInit || phase_ == Phase::kDone || saved_) return;
  if (phase_ == Phase::kBuffer && !winner_transient()) {
    // Unreturned buffered results still point into the record store;
    // materialize them into executor-owned storage and repoint. The deque
    // never reallocates elements, so earlier repointed entries stay valid.
    // (Transient plans need none of this: their documents live in the
    // stage's own arena, which yields cannot invalidate.)
    for (size_t i = buffer_pos_; i < winner_->docs.size(); ++i) {
      owned_buffer_.push_back(*winner_->docs[i]);
      winner_->docs[i] = &owned_buffer_.back();
    }
  }
  winner_->plan->root->SaveState();
  saved_ = true;
}

void PlanExecutor::RestoreState() {
  if (!saved_) return;
  saved_ = false;
  winner_->plan->root->RestoreState();
}

void PlanExecutor::Finish() {
  phase_ = Phase::kDone;
  // A raced or cost-picked winner that ran to EOF is remembered with its
  // full works figure — the number later replanning budgets derive from,
  // and exactly what the batch executor stored after its full drain. A
  // stream abandoned early (limit) stores nothing: a partial works count
  // would poison those budgets.
  const bool selected = raced_ || planned_by_ == PlannedBy::kCost;
  if (selected && winner_ != nullptr && winner_->eof && cache_ != nullptr) {
    if (shape_.empty()) shape_ = MakeShape();
    cache_->Store(shape_, winner_->plan->index_name, winner_->works);
  }
  // Measure estimation accuracy against the drain that actually happened.
  // Only full drains count: a limit-k execution stops early, so its actual
  // counters are not comparable to the full-drain estimate.
  const PlanEstimate* est = winner_estimate();
  if (est != nullptr && winner_ != nullptr && winner_->eof && limit_ == 0) {
    ExecStats stats;
    winner_->plan->root->AccumulateStats(&stats);
    const double actual =
        static_cast<double>(stats.keys_examined + stats.docs_examined);
    const double predicted = est->keys + est->docs;
    const double rel_err =
        std::abs(predicted - actual) / std::max(1.0, actual);
    STIX_METRIC_HISTOGRAM(err_pct, "planner.estimate_error_pct");
    err_pct.Observe(static_cast<uint64_t>(rel_err * 100.0));
  }
}

const PlanEstimate* PlanExecutor::EstimateForPlan(
    const CandidatePlan* plan) const {
  if (estimates_.empty() || plan == nullptr) return nullptr;
  const CandidatePlan* base = candidates_.data();
  if (plan < base || plan >= base + candidates_.size()) return nullptr;
  const size_t i = static_cast<size_t>(plan - base);
  if (i >= estimates_.size() || !estimates_[i].valid) return nullptr;
  return &estimates_[i];
}

const PlanEstimate* PlanExecutor::winner_estimate() const {
  if (winner_ == nullptr) return nullptr;
  return EstimateForPlan(winner_->plan);
}

// Bucket-unpacked and raw executions of the same expression have different
// plan spaces; keep their cache entries apart.
std::string PlanExecutor::MakeShape() const {
  std::string shape = QueryShape(*expr_);
  if (options_.bucket_layout != nullptr && !options_.raw_buckets) {
    shape.insert(0, "bucket|");
  }
  return shape;
}

ExecStats PlanExecutor::CurrentStats() const {
  ExecStats stats;
  if (winner_ == nullptr) return stats;
  winner_->plan->root->AccumulateStats(&stats);
  stats.works = winner_->works;
  stats.n_returned = returned_;
  stats.plan_summary = winner_->plan->summary;
  return stats;
}

ExplainNode PlanExecutor::ExplainWinner() const {
  if (winner_ == nullptr) {
    ExplainNode none;
    none.stage = "NONE";
    return none;
  }
  ExplainNode node = winner_->plan->root->Explain();
  if (const PlanEstimate* est = EstimateForPlan(winner_->plan)) {
    bool keys_done = false, docs_done = false;
    AnnotateEstimates(&node, *est, &keys_done, &docs_done);
  }
  return node;
}

std::vector<ExplainNode> PlanExecutor::ExplainRejected() const {
  std::vector<ExplainNode> rejected;
  for (const Racer& racer : racers_) {
    if (&racer == winner_) continue;
    rejected.push_back(racer.plan->root->Explain());
    if (const PlanEstimate* est = EstimateForPlan(racer.plan)) {
      bool keys_done = false, docs_done = false;
      AnnotateEstimates(&rejected.back(), *est, &keys_done, &docs_done);
    }
  }
  return rejected;
}

const std::string& PlanExecutor::winning_index() const {
  static const std::string kNoWinner;
  return winner_ == nullptr ? kNoWinner : winner_->plan->index_name;
}

ExecutionResult ExecuteQuery(const storage::RecordStore& records,
                             const index::IndexCatalog& catalog,
                             const ExprPtr& expr,
                             const ExecutorOptions& options,
                             PlanCache* cache) {
  Stopwatch timer;
  PlanExecutor exec(records, catalog, expr, options, cache);
  ExecutionResult result;
  storage::RecordId rid;
  const bson::Document* doc;
  while (exec.Next(&rid, &doc)) {
    result.docs.push_back(doc);
    result.rids.push_back(rid);
  }
  result.stats = exec.CurrentStats();
  result.winning_index = exec.winning_index();
  result.num_candidates = exec.num_candidates();
  result.from_plan_cache = exec.from_plan_cache();
  result.replanned = exec.replanned();
  result.planned_by = exec.planned_by();
  if (const PlanEstimate* est = exec.winner_estimate()) {
    result.estimated_keys = est->keys;
    result.estimated_docs = est->docs;
  }
  if (exec.winner_transient()) {
    // The documents live in the winning plan's unpack arena, which dies
    // with `exec` at return: materialize into the result itself. Transient
    // documents are always arena-owned (BucketUnpackStage copies even
    // pass-through rows into its arena) and each arena slot is emitted
    // exactly once, so moving them out is safe and skips a deep copy of
    // every unpacked point.
    result.owned.reserve(result.docs.size());
    for (const bson::Document* d : result.docs) {
      result.owned.push_back(std::move(*const_cast<bson::Document*>(d)));
    }
    for (size_t i = 0; i < result.docs.size(); ++i) {
      result.docs[i] = &result.owned[i];
    }
  } else {
    result.borrow_source = &records;
    result.borrow_generation = records.generation();
  }
  result.exec_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace stix::query
