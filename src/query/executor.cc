#include "query/executor.h"

#include <algorithm>

namespace stix::query {
namespace {

// Plan stages yield (RecordId, const Document*) into the record store, so
// racers accumulate borrowed pointers — losing candidates never copy a
// document, and the winner's pointers flow to the caller unchanged.
struct RacingState {
  CandidatePlan* plan;
  std::vector<const bson::Document*> docs;
  std::vector<storage::RecordId> rids;
  uint64_t works = 0;
  bool eof = false;
};

void DrainToEof(PlanStage* root, RacingState* state) {
  storage::RecordId rid;
  const bson::Document* doc;
  for (;;) {
    const PlanStage::State s = root->Work(&rid, &doc);
    ++state->works;
    if (s == PlanStage::State::kEof) return;
    if (s == PlanStage::State::kAdvanced) {
      state->docs.push_back(doc);
      state->rids.push_back(rid);
    }
  }
}

// Runs the plan until EOF or until `works_cap` units are spent. Returns
// true on EOF (complete result set in the state).
bool DrainWithCap(PlanStage* root, uint64_t works_cap, RacingState* state) {
  storage::RecordId rid;
  const bson::Document* doc;
  while (state->works < works_cap) {
    const PlanStage::State s = root->Work(&rid, &doc);
    ++state->works;
    if (s == PlanStage::State::kEof) return true;
    if (s == PlanStage::State::kAdvanced) {
      state->docs.push_back(doc);
      state->rids.push_back(rid);
    }
  }
  return false;
}

// Races all candidates (MongoDB's multi-planner trial) and returns the
// winner, which may be partially or fully executed.
RacingState* RunTrial(std::vector<RacingState>* racers,
                      const storage::RecordStore& records,
                      const ExecutorOptions& options) {
  uint64_t budget = options.trial_works;
  if (budget == 0) {
    budget = std::max<uint64_t>(10000, records.num_records() * 3 / 10);
  }
  bool trial_over = false;
  while (!trial_over) {
    trial_over = true;
    for (RacingState& racer : *racers) {
      if (racer.eof || racer.works >= budget) continue;
      trial_over = false;
      storage::RecordId rid;
      const bson::Document* doc;
      const PlanStage::State state = racer.plan->root->Work(&rid, &doc);
      ++racer.works;
      if (state == PlanStage::State::kEof) {
        racer.eof = true;
      } else if (state == PlanStage::State::kAdvanced) {
        racer.docs.push_back(doc);
        racer.rids.push_back(rid);
        if (racer.docs.size() >= options.trial_results) {
          return &racer;
        }
      }
    }
  }
  // Most results; tie broken by least work done (cheapest progress).
  RacingState* winner = &(*racers)[0];
  for (RacingState& racer : *racers) {
    if (racer.docs.size() > winner->docs.size() ||
        (racer.docs.size() == winner->docs.size() &&
         racer.works < winner->works)) {
      winner = &racer;
    }
  }
  return winner;
}

void FillResult(RacingState* winner, ExecutionResult* result) {
  result->docs = std::move(winner->docs);
  result->rids = std::move(winner->rids);
  winner->plan->root->AccumulateStats(&result->stats);
  result->stats.works = winner->works;
  result->stats.n_returned = result->docs.size();
  result->stats.plan_summary = winner->plan->summary;
  result->winning_index = winner->plan->index_name;
}

}  // namespace

ExecutionResult ExecuteQuery(const storage::RecordStore& records,
                             const index::IndexCatalog& catalog,
                             const ExprPtr& expr,
                             const ExecutorOptions& options,
                             PlanCache* cache) {
  Stopwatch timer;
  std::vector<CandidatePlan> candidates = Planner::Plan(records, catalog, expr);

  ExecutionResult result;
  result.num_candidates = static_cast<int>(candidates.size());

  // Fast path: a cached plan for this query shape, bounded by the
  // replanning budget.
  std::string shape;
  if (cache != nullptr && candidates.size() > 1) {
    shape = QueryShape(*expr);
    if (const PlanCacheEntry* entry = cache->Lookup(shape)) {
      CandidatePlan* cached_plan = nullptr;
      for (CandidatePlan& plan : candidates) {
        if (plan.index_name == entry->index_name) {
          cached_plan = &plan;
          break;
        }
      }
      if (cached_plan != nullptr) {
        const uint64_t cap = std::max<uint64_t>(
            options.replan_min_works,
            static_cast<uint64_t>(options.replan_factor *
                                  static_cast<double>(entry->works)));
        RacingState cached{cached_plan, {}, {}, 0, false};
        if (DrainWithCap(cached.plan->root.get(), cap, &cached)) {
          result.from_plan_cache = true;
          FillResult(&cached, &result);
          result.exec_millis = timer.ElapsedMillis();
          return result;
        }
        // Budget blown: evict and replan from scratch with fresh plan
        // stages (MongoDB's replanning). `cached_plan` points into the old
        // candidate vector, so it must die before the vector is replaced.
        cache->Evict(shape);
        result.replanned = true;
        cached_plan = nullptr;
        candidates = Planner::Plan(records, catalog, expr);
      }
    }
  }

  std::vector<RacingState> racers;
  racers.reserve(candidates.size());
  for (CandidatePlan& plan : candidates) {
    racers.push_back(RacingState{&plan, {}, {}, 0, false});
  }

  RacingState* winner = &racers[0];
  const bool raced = racers.size() > 1;
  if (raced) {
    winner = RunTrial(&racers, records, options);
  }
  if (!winner->eof) {
    DrainToEof(winner->plan->root.get(), winner);
  }
  if (raced && cache != nullptr) {
    if (shape.empty()) shape = QueryShape(*expr);
    cache->Store(shape, winner->plan->index_name, winner->works);
  }

  FillResult(winner, &result);
  result.exec_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace stix::query
