#ifndef STIX_QUERY_QUERY_ANALYSIS_H_
#define STIX_QUERY_QUERY_ANALYSIS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "index/index_bounds.h"
#include "query/expression.h"

namespace stix::query {

/// Everything the planner/router can learn about one document path from a
/// conjunctive query: a closed base range, an interval list from a
/// single-path $or / $in (the Hilbert covering shape), and/or a $geoWithin.
struct PathInfo {
  std::optional<bson::Value> lo;
  std::optional<bson::Value> hi;
  std::vector<index::ValueInterval> or_intervals;
  /// Exact geometry predicate on this path ($geoWithin box or polygon),
  /// exposed as the Region the 2dsphere bounds covering needs.
  const geo::Region* geo = nullptr;
};

/// Decomposes the top-level conjunction of `expr` into per-path constraint
/// summaries. Unrecognised sub-expressions simply contribute nothing (they
/// remain residual-filter-only).
std::map<std::string, PathInfo> AnalyzeQuery(const ExprPtr& expr);

/// Bounds for an ascending index/shard-key field: the $or interval list if
/// present, else the closed base range, else full-range.
index::FieldBounds AscendingBounds(const PathInfo* info);

}  // namespace stix::query

#endif  // STIX_QUERY_QUERY_ANALYSIS_H_
