#ifndef STIX_QUERY_AGGREGATE_H_
#define STIX_QUERY_AGGREGATE_H_

#include <string>
#include <variant>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "query/expression.h"

namespace stix::query {

/// A small aggregation-pipeline subset, enough for the analytics the paper's
/// use cases call for and for the $bucketAuto zone recipe (Section 4.2.4):
/// $match, $project, $sort, $limit, $group, $bucketAuto.

/// {$match: <expr>} — filters documents.
struct MatchStage {
  ExprPtr expr;
};

/// {$project: {a: 1, b: 1}} — include-only projection of top-level fields
/// and dotted paths (a dotted path materialises under its full name).
struct ProjectStage {
  std::vector<std::string> fields;
};

/// {$sort: {path: 1|-1}} — single-key sort, BSON value order.
struct SortStage {
  std::string path;
  bool ascending = true;
};

/// {$limit: n}.
struct LimitStage {
  size_t n = 0;
};

/// Accumulators usable inside $group.
enum class AccumulatorOp { kCount, kSum, kAvg, kMin, kMax };

struct Accumulator {
  std::string output_name;  ///< Field name in the group's output document.
  AccumulatorOp op = AccumulatorOp::kCount;
  std::string input_path;   ///< Ignored for kCount.
};

/// {$group: {_id: "$path", ...accumulators}}. An empty key_path groups
/// everything into one document (like _id: null).
struct GroupStage {
  std::string key_path;
  std::vector<Accumulator> accumulators;
};

/// {$bucketAuto: {groupBy: "$path", buckets: n}} — equi-count buckets over
/// the values at `path`; output documents carry {_id: {min, max}, count}.
/// This is exactly how the paper derives its zone boundaries.
struct BucketAutoStage {
  std::string path;
  int buckets = 1;
};

using PipelineStage = std::variant<MatchStage, ProjectStage, SortStage,
                                   LimitStage, GroupStage, BucketAutoStage>;

/// An ordered list of stages.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(std::vector<PipelineStage> stages)
      : stages_(std::move(stages)) {}

  Pipeline& Match(ExprPtr expr) {
    stages_.push_back(MatchStage{std::move(expr)});
    return *this;
  }
  Pipeline& Project(std::vector<std::string> fields) {
    stages_.push_back(ProjectStage{std::move(fields)});
    return *this;
  }
  Pipeline& Sort(std::string path, bool ascending = true) {
    stages_.push_back(SortStage{std::move(path), ascending});
    return *this;
  }
  Pipeline& Limit(size_t n) {
    stages_.push_back(LimitStage{n});
    return *this;
  }
  Pipeline& Group(GroupStage group) {
    stages_.push_back(std::move(group));
    return *this;
  }
  Pipeline& BucketAuto(std::string path, int buckets) {
    stages_.push_back(BucketAutoStage{std::move(path), buckets});
    return *this;
  }

  const std::vector<PipelineStage>& stages() const { return stages_; }

 private:
  std::vector<PipelineStage> stages_;
};

/// Runs a pipeline over an in-memory document stream (the merge side of a
/// cluster aggregation; Cluster::Aggregate handles routing and the shard
/// side). Fails with InvalidArgument on malformed stages (e.g. $avg over a
/// non-numeric field is skipped per-document, but an unknown path in
/// $bucketAuto with no values at all fails).
Result<std::vector<bson::Document>> RunPipeline(
    std::vector<bson::Document> input, const Pipeline& pipeline);

}  // namespace stix::query

#endif  // STIX_QUERY_AGGREGATE_H_
