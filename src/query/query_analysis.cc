#include "query/query_analysis.h"

namespace stix::query {
namespace {

void TightenLo(PathInfo* info, const bson::Value& v) {
  if (!info->lo.has_value() || Compare(v, *info->lo) > 0) info->lo = v;
}

void TightenHi(PathInfo* info, const bson::Value& v) {
  if (!info->hi.has_value() || Compare(v, *info->hi) < 0) info->hi = v;
}

void AbsorbCmp(const CmpExpr& cmp, PathInfo* info) {
  switch (cmp.op()) {
    case CmpOp::kEq:
      TightenLo(info, cmp.value());
      TightenHi(info, cmp.value());
      break;
    case CmpOp::kGt:
    case CmpOp::kGte:
      TightenLo(info, cmp.value());
      break;
    case CmpOp::kLt:
    case CmpOp::kLte:
      TightenHi(info, cmp.value());
      break;
  }
}

// If every leaf of this $or constrains the same single path with ranges or
// $in lists, returns that path and appends the intervals. This recognises
// the paper's Hilbert query shape:
//   $or: [{h: {$gte: a, $lte: b}}, ..., {h: {$in: [c, d]}}].
bool TryExtractSinglePathOr(const OrExpr& or_expr, std::string* path,
                            std::vector<index::ValueInterval>* intervals) {
  path->clear();
  auto note_path = [&](const std::string& p) {
    if (path->empty()) {
      *path = p;
      return true;
    }
    return *path == p;
  };

  for (const ExprPtr& child : or_expr.children()) {
    if (child->kind() == MatchExpr::Kind::kIn) {
      const auto& in = static_cast<const InExpr&>(*child);
      if (!note_path(in.path())) return false;
      for (const bson::Value& v : in.values()) {
        intervals->push_back(index::ValueInterval{v, v});
      }
    } else if (child->kind() == MatchExpr::Kind::kCmp) {
      const auto& cmp = static_cast<const CmpExpr&>(*child);
      if (!note_path(cmp.path())) return false;
      if (cmp.op() != CmpOp::kEq) return false;
      intervals->push_back(index::ValueInterval{cmp.value(), cmp.value()});
    } else if (child->kind() == MatchExpr::Kind::kAnd) {
      // Expect a {$gte, $lte} pair on one path.
      const auto& conj = static_cast<const AndExpr&>(*child);
      PathInfo range;
      for (const ExprPtr& leaf : conj.children()) {
        if (leaf->kind() != MatchExpr::Kind::kCmp) return false;
        const auto& cmp = static_cast<const CmpExpr&>(*leaf);
        if (!note_path(cmp.path())) return false;
        AbsorbCmp(cmp, &range);
      }
      if (!range.lo.has_value() || !range.hi.has_value()) return false;
      intervals->push_back(index::ValueInterval{*range.lo, *range.hi});
    } else {
      return false;
    }
  }
  return !path->empty();
}

}  // namespace

std::map<std::string, PathInfo> AnalyzeQuery(const ExprPtr& expr) {
  std::map<std::string, PathInfo> paths;
  std::vector<const MatchExpr*> conjuncts;
  if (expr->kind() == MatchExpr::Kind::kAnd) {
    for (const ExprPtr& child :
         static_cast<const AndExpr&>(*expr).children()) {
      conjuncts.push_back(child.get());
    }
  } else {
    conjuncts.push_back(expr.get());
  }

  for (const MatchExpr* conjunct : conjuncts) {
    switch (conjunct->kind()) {
      case MatchExpr::Kind::kCmp: {
        const auto& cmp = static_cast<const CmpExpr&>(*conjunct);
        AbsorbCmp(cmp, &paths[cmp.path()]);
        break;
      }
      case MatchExpr::Kind::kIn: {
        const auto& in = static_cast<const InExpr&>(*conjunct);
        PathInfo& info = paths[in.path()];
        for (const bson::Value& v : in.values()) {
          info.or_intervals.push_back(index::ValueInterval{v, v});
        }
        break;
      }
      case MatchExpr::Kind::kOr: {
        std::string path;
        std::vector<index::ValueInterval> intervals;
        if (TryExtractSinglePathOr(static_cast<const OrExpr&>(*conjunct),
                                   &path, &intervals)) {
          PathInfo& info = paths[path];
          info.or_intervals.insert(info.or_intervals.end(), intervals.begin(),
                                   intervals.end());
        }
        // Unrecognised $or shapes stay residual-filter-only.
        break;
      }
      case MatchExpr::Kind::kGeoWithinBox: {
        const auto& geo = static_cast<const GeoWithinBoxExpr&>(*conjunct);
        paths[geo.path()].geo = &geo.region();
        break;
      }
      case MatchExpr::Kind::kGeoWithinPolygon: {
        const auto& geo =
            static_cast<const GeoWithinPolygonExpr&>(*conjunct);
        paths[geo.path()].geo = &geo.region();
        break;
      }
      case MatchExpr::Kind::kGeoIntersectsBox: {
        // Index bounds are the same cell covering as $geoWithin: any
        // geometry touching the rectangle has an indexed cell that touches
        // it too; the residual filter does the exact check.
        const auto& geo =
            static_cast<const GeoIntersectsBoxExpr&>(*conjunct);
        paths[geo.path()].geo = &geo.region();
        break;
      }
      case MatchExpr::Kind::kRangeSet: {
        const auto& rs = static_cast<const RangeSetExpr&>(*conjunct);
        PathInfo& info = paths[rs.path()];
        info.or_intervals.reserve(info.or_intervals.size() +
                                  rs.ranges().size());
        for (const RangeSetExpr::Range& r : rs.ranges()) {
          info.or_intervals.push_back(index::ValueInterval{r.lo, r.hi});
        }
        break;
      }
      case MatchExpr::Kind::kAnd: {
        // Nested $and (e.g. from MakeRange): absorb its cmp leaves.
        for (const ExprPtr& leaf :
             static_cast<const AndExpr&>(*conjunct).children()) {
          if (leaf->kind() == MatchExpr::Kind::kCmp) {
            const auto& cmp = static_cast<const CmpExpr&>(*leaf);
            AbsorbCmp(cmp, &paths[cmp.path()]);
          }
        }
        break;
      }
    }
  }
  return paths;
}

index::FieldBounds AscendingBounds(const PathInfo* info) {
  index::FieldBounds fb;
  if (info == nullptr) {
    fb.full_range = true;
    return fb;
  }
  if (!info->or_intervals.empty()) {
    fb.intervals = info->or_intervals;
    fb.Normalize();
    return fb;
  }
  if (info->lo.has_value() && info->hi.has_value() &&
      Compare(*info->lo, *info->hi) <= 0) {
    fb.intervals.push_back(index::ValueInterval{*info->lo, *info->hi});
    return fb;
  }
  fb.full_range = true;
  return fb;
}

}  // namespace stix::query
