#ifndef STIX_QUERY_EXPRESSION_H_
#define STIX_QUERY_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "bson/document.h"
#include "geo/geo.h"
#include "geo/region.h"

namespace stix::query {

/// Comparison operators of the match language.
enum class CmpOp { kEq, kGt, kGte, kLt, kLte };

/// A match expression tree — the query language subset the paper's workload
/// needs: $and, $or, $in, range comparisons and $geoWithin with a box.
class MatchExpr {
 public:
  enum class Kind {
    kCmp,
    kIn,
    kAnd,
    kOr,
    kGeoWithinBox,
    kGeoWithinPolygon,
    kGeoIntersectsBox,
    kRangeSet,
  };

  explicit MatchExpr(Kind kind) : kind_(kind) {}
  virtual ~MatchExpr() = default;

  Kind kind() const { return kind_; }

  /// True iff the document satisfies this predicate.
  virtual bool Matches(const bson::Document& doc) const = 0;

  /// Mongo-shell-flavoured rendering for logs and examples.
  virtual std::string DebugString() const = 0;

 private:
  Kind kind_;
};

using ExprPtr = std::shared_ptr<const MatchExpr>;

/// {path: {$op: value}}. Values only match within their canonical type
/// bracket (a date bound never matches a number), as in MongoDB.
class CmpExpr : public MatchExpr {
 public:
  CmpExpr(std::string path, CmpOp op, bson::Value value)
      : MatchExpr(Kind::kCmp),
        path_(std::move(path)),
        op_(op),
        value_(std::move(value)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  CmpOp op() const { return op_; }
  const bson::Value& value() const { return value_; }

 private:
  std::string path_;
  CmpOp op_;
  bson::Value value_;
};

/// {path: {$in: [v1, v2, ...]}}.
class InExpr : public MatchExpr {
 public:
  InExpr(std::string path, std::vector<bson::Value> values)
      : MatchExpr(Kind::kIn),
        path_(std::move(path)),
        values_(std::move(values)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  const std::vector<bson::Value>& values() const { return values_; }

 private:
  std::string path_;
  std::vector<bson::Value> values_;
};

/// {$and: [...]}; an empty $and matches everything.
class AndExpr : public MatchExpr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : MatchExpr(Kind::kAnd), children_(std::move(children)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

/// {$or: [...]}.
class OrExpr : public MatchExpr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : MatchExpr(Kind::kOr), children_(std::move(children)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

/// {path: {$geoWithin: {$box: ...}}} over a GeoJSON point field — the exact
/// geometric predicate; index scans only pre-filter by cell, this is the
/// refinement step.
class GeoWithinBoxExpr : public MatchExpr {
 public:
  GeoWithinBoxExpr(std::string path, geo::Rect box)
      : MatchExpr(Kind::kGeoWithinBox),
        path_(std::move(path)),
        box_(box),
        region_(box) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  const geo::Rect& box() const { return box_; }

  /// Region view for index-bounds covering.
  const geo::Region& region() const { return region_; }

 private:
  std::string path_;
  geo::Rect box_;
  geo::RectRegion region_;
};

/// {path: {$geoWithin: {$polygon: ...}}} over a GeoJSON point field — the
/// paper's "more complex data types" extension: exact point-in-polygon
/// refinement over the same cell-covering index access path.
class GeoWithinPolygonExpr : public MatchExpr {
 public:
  GeoWithinPolygonExpr(std::string path, geo::Polygon polygon)
      : MatchExpr(Kind::kGeoWithinPolygon),
        path_(std::move(path)),
        polygon_(std::move(polygon)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  const geo::Polygon& polygon() const { return polygon_; }
  const geo::Region& region() const { return polygon_; }

 private:
  std::string path_;
  geo::Polygon polygon_;
};

/// {path: {$geoIntersects: {$box: ...}}} over a GeoJSON Point *or
/// LineString* field: matches documents whose geometry touches the
/// rectangle (a point inside it; a line crossing it). The complex-geometry
/// counterpart of $geoWithin, served by multikey 2dsphere indexes.
class GeoIntersectsBoxExpr : public MatchExpr {
 public:
  GeoIntersectsBoxExpr(std::string path, geo::Rect box)
      : MatchExpr(Kind::kGeoIntersectsBox),
        path_(std::move(path)),
        box_(box),
        region_(box) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  const geo::Rect& box() const { return box_; }
  const geo::Region& region() const { return region_; }

 private:
  std::string path_;
  geo::Rect box_;
  geo::RectRegion region_;
};

/// A sorted, disjoint set of closed [lo, hi] intervals on one path — the
/// efficient form of the paper's "$or of $gte/$lte ranges plus $in of single
/// cells" over hilbertIndex. Semantically identical to that $or; matching is
/// a binary search instead of a linear walk, which matters when a covering
/// has thousands of ranges (hil* on the S extent).
class RangeSetExpr : public MatchExpr {
 public:
  struct Range {
    bson::Value lo;
    bson::Value hi;
  };

  /// `ranges` must be sorted by lo and disjoint (as curve coverings are).
  RangeSetExpr(std::string path, std::vector<Range> ranges)
      : MatchExpr(Kind::kRangeSet),
        path_(std::move(path)),
        ranges_(std::move(ranges)) {}

  bool Matches(const bson::Document& doc) const override;
  std::string DebugString() const override;

  const std::string& path() const { return path_; }
  const std::vector<Range>& ranges() const { return ranges_; }

 private:
  std::string path_;
  std::vector<Range> ranges_;
};

// Builder helpers.
ExprPtr MakeCmp(std::string path, CmpOp op, bson::Value value);
ExprPtr MakeIn(std::string path, std::vector<bson::Value> values);
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeGeoWithinBox(std::string path, geo::Rect box);
ExprPtr MakeGeoWithinPolygon(std::string path, geo::Polygon polygon);
ExprPtr MakeGeoIntersectsBox(std::string path, geo::Rect box);

/// {path: {$gte: lo, $lte: hi}} as one AND.
ExprPtr MakeRange(const std::string& path, bson::Value lo, bson::Value hi);

/// Sorted disjoint interval set on one path (see RangeSetExpr).
ExprPtr MakeRangeSet(std::string path, std::vector<RangeSetExpr::Range> ranges);

}  // namespace stix::query

#endif  // STIX_QUERY_EXPRESSION_H_
