#ifndef STIX_INDEX_INDEX_BOUNDS_H_
#define STIX_INDEX_INDEX_BOUNDS_H_

#include <string>
#include <vector>

#include "bson/value.h"

namespace stix::index {

/// Closed interval of BSON values [lo, hi] (all the paper's predicates —
/// $gte/$lte pairs, $in points, covering ranges — are closed).
struct ValueInterval {
  bson::Value lo;
  bson::Value hi;

  bool IsPoint() const { return Compare(lo, hi) == 0; }
};

/// The OR-set of intervals constraining one index field. An unconstrained
/// field has full_range == true (scan everything for this position).
struct FieldBounds {
  std::vector<ValueInterval> intervals;  ///< Sorted by lo, disjoint.
  bool full_range = false;

  /// Sorts and merges overlapping/adjacent-equal intervals in place.
  void Normalize();
};

/// Per-field bounds for a (possibly compound) index scan, in index field
/// order — the shape MongoDB explain prints as indexBounds.
struct IndexBounds {
  std::vector<FieldBounds> fields;

  std::string DebugString() const;
};

/// Outcome of checking one value against one field's bounds.
struct BoundsCheck {
  enum class Kind {
    kInBounds,   ///< Value inside some interval.
    kSeekAhead,  ///< Value in a gap; `seek_to` is the next interval's lo.
    kExhausted,  ///< Value above every interval.
  };
  Kind kind;
  const bson::Value* seek_to = nullptr;
};

/// Binary-searches `bounds` (full_range always in-bounds).
BoundsCheck CheckBounds(const FieldBounds& bounds, const bson::Value& v);

}  // namespace stix::index

#endif  // STIX_INDEX_INDEX_BOUNDS_H_
