#include "index/key_generator.h"

#include <algorithm>

#include "geo/covering.h"
#include "geo/region.h"
#include "keystring/keystring.h"

namespace stix::index {

KeyGenerator::KeyGenerator(const IndexDescriptor& descriptor)
    : descriptor_(descriptor), geohash_(descriptor.geohash_bits()) {}

Result<std::vector<bson::Value>> KeyGenerator::FieldValues(
    const bson::Document& doc, size_t field_index) const {
  const IndexField& field = descriptor_.fields()[field_index];
  const bson::Value* v = doc.GetPath(field.path);

  switch (field.kind) {
    case IndexFieldKind::kAscending: {
      if (v == nullptr) return std::vector<bson::Value>{bson::Value::Null()};
      if (v->type() == bson::Type::kArray) {
        // Multikey: one entry per element (MongoDB array indexing).
        std::vector<bson::Value> values(v->AsArray());
        if (values.empty()) values.push_back(bson::Value::Null());
        return values;
      }
      return std::vector<bson::Value>{*v};
    }
    case IndexFieldKind::k2dsphere: {
      double lon, lat;
      if (v != nullptr && bson::ExtractGeoJsonPoint(*v, &lon, &lat)) {
        return std::vector<bson::Value>{bson::Value::Int64(
            static_cast<int64_t>(geohash_.Encode(lon, lat)))};
      }
      std::vector<std::pair<double, double>> line;
      if (v != nullptr && bson::ExtractGeoJsonLineString(*v, &line)) {
        // One cell value per covering cell of the polyline (multikey).
        std::vector<geo::Point> points;
        points.reserve(line.size());
        for (const auto& [plon, plat] : line) {
          points.push_back(geo::Point{plon, plat});
        }
        const geo::Covering covering = geo::CoverRegion(
            geohash_.curve(), geo::PolylineRegion(std::move(points)));
        if (covering.num_cells > kMaxKeysPerDocument) {
          return Status::InvalidArgument(
              "LineString covers too many cells for indexing (" +
              std::to_string(covering.num_cells) + ")");
        }
        std::vector<bson::Value> cells;
        cells.reserve(covering.num_cells);
        for (const geo::DRange& r : covering.ranges) {
          for (uint64_t d = r.lo; d <= r.hi; ++d) {
            cells.push_back(bson::Value::Int64(static_cast<int64_t>(d)));
          }
        }
        return cells;
      }
      return Status::InvalidArgument(
          "2dsphere field '" + field.path +
          "' is neither a GeoJSON Point nor a LineString in document");
    }
  }
  return Status::Internal("unknown index field kind");
}

Result<std::vector<std::string>> KeyGenerator::MakeKeys(
    const bson::Document& doc) const {
  // Cartesian product of per-field value lists.
  std::vector<std::vector<bson::Value>> per_field;
  per_field.reserve(descriptor_.num_fields());
  size_t total = 1;
  for (size_t i = 0; i < descriptor_.num_fields(); ++i) {
    Result<std::vector<bson::Value>> values = FieldValues(doc, i);
    if (!values.ok()) return values.status();
    total *= values->size();
    if (total > kMaxKeysPerDocument) {
      return Status::InvalidArgument(
          "document produces too many index keys");
    }
    per_field.push_back(std::move(*values));
  }

  std::vector<std::string> keys;
  keys.reserve(total);
  std::vector<size_t> cursor(per_field.size(), 0);
  for (size_t n = 0; n < total; ++n) {
    keystring::Builder b;
    for (size_t f = 0; f < per_field.size(); ++f) {
      b.AppendValue(per_field[f][cursor[f]]);
    }
    keys.push_back(std::move(b).Build());
    // Odometer increment.
    for (size_t f = per_field.size(); f-- > 0;) {
      if (++cursor[f] < per_field[f].size()) break;
      cursor[f] = 0;
    }
  }
  // Deduplicate (an array with repeated values / a line revisiting a cell
  // must not produce duplicate entries, as in MongoDB).
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

Result<std::string> KeyGenerator::MakeKey(const bson::Document& doc) const {
  Result<std::vector<std::string>> keys = MakeKeys(doc);
  if (!keys.ok()) return keys.status();
  if (keys->size() != 1) {
    return Status::InvalidArgument("document is multikey for this index");
  }
  return std::move(keys->front());
}

Result<std::vector<bson::Value>> KeyGenerator::MakeKeyValues(
    const bson::Document& doc) const {
  std::vector<bson::Value> values;
  values.reserve(descriptor_.num_fields());
  for (size_t i = 0; i < descriptor_.num_fields(); ++i) {
    Result<std::vector<bson::Value>> field_values = FieldValues(doc, i);
    if (!field_values.ok()) return field_values.status();
    if (field_values->size() != 1) {
      return Status::InvalidArgument("document is multikey for this index");
    }
    values.push_back(std::move(field_values->front()));
  }
  return values;
}

}  // namespace stix::index
