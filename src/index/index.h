#ifndef STIX_INDEX_INDEX_H_
#define STIX_INDEX_INDEX_H_

#include <memory>

#include "index/index_descriptor.h"
#include "index/key_generator.h"
#include "storage/btree.h"

namespace stix::index {

/// A live index: descriptor + key generator + the backing B-tree.
class Index {
 public:
  explicit Index(IndexDescriptor descriptor)
      : descriptor_(std::move(descriptor)), keygen_(descriptor_) {}

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const IndexDescriptor& descriptor() const { return descriptor_; }
  const KeyGenerator& keygen() const { return keygen_; }
  storage::BTree& btree() { return btree_; }
  const storage::BTree& btree() const { return btree_; }

  /// True once any stored document produced more than one key (array value
  /// or LineString geometry) — scans must then deduplicate RecordIds, as
  /// MongoDB's multikey indexes do.
  bool is_multikey() const { return multikey_; }

  /// Restores the persisted multikey flag when the tree is rebuilt from a
  /// checkpoint image (entries alone cannot reveal it: a multikey doc's
  /// keys look like any other duplicates).
  void set_multikey(bool multikey) { multikey_ = multikey; }

  Status InsertDocument(const bson::Document& doc, storage::RecordId rid) {
    Result<std::vector<std::string>> keys = keygen_.MakeKeys(doc);
    if (!keys.ok()) return keys.status();
    if (keys->size() > 1) multikey_ = true;
    for (const std::string& key : *keys) {
      btree_.Insert(key, rid);
    }
    return Status::OK();
  }

  Status RemoveDocument(const bson::Document& doc, storage::RecordId rid) {
    Result<std::vector<std::string>> keys = keygen_.MakeKeys(doc);
    if (!keys.ok()) return keys.status();
    for (const std::string& key : *keys) {
      if (!btree_.Remove(key, rid)) {
        return Status::NotFound("index entry missing on remove");
      }
    }
    return Status::OK();
  }

 private:
  IndexDescriptor descriptor_;
  KeyGenerator keygen_;
  storage::BTree btree_;
  bool multikey_ = false;
};

}  // namespace stix::index

#endif  // STIX_INDEX_INDEX_H_
