#ifndef STIX_INDEX_INDEX_CATALOG_H_
#define STIX_INDEX_INDEX_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index.h"

namespace stix::index {

/// The set of indexes on one shard-local collection. Keeps every index in
/// sync on document insert/remove, like MongoDB's index catalog.
class IndexCatalog {
 public:
  IndexCatalog() = default;

  IndexCatalog(const IndexCatalog&) = delete;
  IndexCatalog& operator=(const IndexCatalog&) = delete;

  /// Creates an empty index. Fails with AlreadyExists on a duplicate name.
  Status CreateIndex(IndexDescriptor descriptor);

  /// Returns the index by name, or nullptr.
  Index* Get(const std::string& name);
  const Index* Get(const std::string& name) const;

  Status OnInsert(const bson::Document& doc, storage::RecordId rid);
  Status OnRemove(const bson::Document& doc, storage::RecordId rid);

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Total bytes across all indexes with prefix compression — what Fig. 14
  /// charts per approach.
  uint64_t TotalSizeBytes() const;

 private:
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace stix::index

#endif  // STIX_INDEX_INDEX_CATALOG_H_
