#ifndef STIX_INDEX_INDEX_DESCRIPTOR_H_
#define STIX_INDEX_INDEX_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "geo/geohash.h"

namespace stix::index {

/// How one field participates in an index.
enum class IndexFieldKind {
  kAscending,  ///< Plain B-tree ordering of the BSON value ({field: 1}).
  k2dsphere,   ///< GeoHash cell of a GeoJSON point ({field: "2dsphere"}).
};

struct IndexField {
  std::string path;  ///< Dotted document path, e.g. "location".
  IndexFieldKind kind = IndexFieldKind::kAscending;
};

/// Declaration of a (possibly compound) index, e.g.
/// {location: "2dsphere", date: 1} or {hilbertIndex: 1, date: 1}.
class IndexDescriptor {
 public:
  IndexDescriptor() = default;
  IndexDescriptor(std::string name, std::vector<IndexField> fields,
                  int geohash_bits = geo::GeoHash::kDefaultBits)
      : name_(std::move(name)),
        fields_(std::move(fields)),
        geohash_bits_(geohash_bits) {}

  const std::string& name() const { return name_; }
  const std::vector<IndexField>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Precision of 2dsphere cell hashes (MongoDB default 26, max 32).
  int geohash_bits() const { return geohash_bits_; }

  /// Index of the first 2dsphere field, or -1 if none.
  int FirstGeoField() const;

  /// "{location: '2dsphere', date: 1}" for explain output and tables.
  std::string KeyPatternString() const;

 private:
  std::string name_;
  std::vector<IndexField> fields_;
  int geohash_bits_ = geo::GeoHash::kDefaultBits;
};

}  // namespace stix::index

#endif  // STIX_INDEX_INDEX_DESCRIPTOR_H_
