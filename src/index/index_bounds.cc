#include "index/index_bounds.h"

#include <algorithm>

#include "bson/json_writer.h"

namespace stix::index {

void FieldBounds::Normalize() {
  if (intervals.empty()) return;
  std::sort(intervals.begin(), intervals.end(),
            [](const ValueInterval& a, const ValueInterval& b) {
              return Compare(a.lo, b.lo) < 0;
            });
  std::vector<ValueInterval> merged;
  merged.reserve(intervals.size());
  for (ValueInterval& iv : intervals) {
    if (!merged.empty() && Compare(iv.lo, merged.back().hi) <= 0) {
      if (Compare(iv.hi, merged.back().hi) > 0) {
        merged.back().hi = std::move(iv.hi);
      }
    } else {
      merged.push_back(std::move(iv));
    }
  }
  intervals = std::move(merged);
}

std::string IndexBounds::DebugString() const {
  std::string out = "[";
  bool first_field = true;
  for (const FieldBounds& fb : fields) {
    if (!first_field) out += "; ";
    first_field = false;
    if (fb.full_range) {
      out += "(all)";
      continue;
    }
    out += std::to_string(fb.intervals.size());
    out += " ivals";
  }
  out += "]";
  return out;
}

BoundsCheck CheckBounds(const FieldBounds& bounds, const bson::Value& v) {
  if (bounds.full_range) {
    return BoundsCheck{BoundsCheck::Kind::kInBounds, nullptr};
  }
  // First interval with hi >= v.
  const auto it = std::lower_bound(
      bounds.intervals.begin(), bounds.intervals.end(), v,
      [](const ValueInterval& iv, const bson::Value& probe) {
        return Compare(iv.hi, probe) < 0;
      });
  if (it == bounds.intervals.end()) {
    return BoundsCheck{BoundsCheck::Kind::kExhausted, nullptr};
  }
  if (Compare(it->lo, v) <= 0) {
    return BoundsCheck{BoundsCheck::Kind::kInBounds, nullptr};
  }
  return BoundsCheck{BoundsCheck::Kind::kSeekAhead, &it->lo};
}

}  // namespace stix::index
