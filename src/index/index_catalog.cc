#include "index/index_catalog.h"

namespace stix::index {

Status IndexCatalog::CreateIndex(IndexDescriptor descriptor) {
  if (Get(descriptor.name()) != nullptr) {
    return Status::AlreadyExists("index '" + descriptor.name() + "' exists");
  }
  indexes_.push_back(std::make_unique<Index>(std::move(descriptor)));
  return Status::OK();
}

Index* IndexCatalog::Get(const std::string& name) {
  for (auto& idx : indexes_) {
    if (idx->descriptor().name() == name) return idx.get();
  }
  return nullptr;
}

const Index* IndexCatalog::Get(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->descriptor().name() == name) return idx.get();
  }
  return nullptr;
}

Status IndexCatalog::OnInsert(const bson::Document& doc,
                              storage::RecordId rid) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const Status s = indexes_[i]->InsertDocument(doc, rid);
    if (!s.ok()) {
      // Roll back the entries already written so the catalog stays
      // consistent with the record store.
      for (size_t j = 0; j < i; ++j) {
        indexes_[j]->RemoveDocument(doc, rid);
      }
      return s;
    }
  }
  return Status::OK();
}

Status IndexCatalog::OnRemove(const bson::Document& doc,
                              storage::RecordId rid) {
  for (auto& idx : indexes_) {
    const Status s = idx->RemoveDocument(doc, rid);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

uint64_t IndexCatalog::TotalSizeBytes() const {
  uint64_t total = 0;
  for (const auto& idx : indexes_) {
    total += idx->btree().SizeWithPrefixCompression();
  }
  return total;
}

}  // namespace stix::index
