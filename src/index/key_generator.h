#ifndef STIX_INDEX_KEY_GENERATOR_H_
#define STIX_INDEX_KEY_GENERATOR_H_

#include <string>
#include <vector>

#include "bson/document.h"
#include "common/status.h"
#include "index/index_descriptor.h"

namespace stix::index {

/// Turns documents into index keys for a descriptor:
///  - ascending fields contribute the document value at the path (Null when
///    the field is missing, as MongoDB does for sparse-less indexes), or
///    one key per element when the value is an array (multikey);
///  - 2dsphere fields contribute the GeoHash cell value (Int64) of a
///    GeoJSON Point, or one key per covering cell of a GeoJSON LineString
///    (multikey — how MongoDB indexes complex geometries).
/// A document's keys are the deduplicated cartesian product of the
/// per-field value lists, KeyString-encoded in declaration order.
class KeyGenerator {
 public:
  /// Guard against degenerate geometries exploding the index (MongoDB has
  /// similar per-document limits).
  static constexpr size_t kMaxKeysPerDocument = 1024;

  explicit KeyGenerator(const IndexDescriptor& descriptor);

  /// All index keys for this document (singleton for scalar point docs).
  Result<std::vector<std::string>> MakeKeys(const bson::Document& doc) const;

  /// Encoded index key for a document that produces exactly one key; fails
  /// with InvalidArgument if the document is multikey for this index.
  Result<std::string> MakeKey(const bson::Document& doc) const;

  /// The per-field BSON values MakeKey would encode (single-key documents;
  /// used by tests).
  Result<std::vector<bson::Value>> MakeKeyValues(
      const bson::Document& doc) const;

  const geo::GeoHash& geohash() const { return geohash_; }

 private:
  /// The list of values field `i` contributes for this document.
  Result<std::vector<bson::Value>> FieldValues(const bson::Document& doc,
                                               size_t field_index) const;

  const IndexDescriptor& descriptor_;
  geo::GeoHash geohash_;
};

}  // namespace stix::index

#endif  // STIX_INDEX_KEY_GENERATOR_H_
