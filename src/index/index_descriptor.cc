#include "index/index_descriptor.h"

namespace stix::index {

int IndexDescriptor::FirstGeoField() const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].kind == IndexFieldKind::k2dsphere) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string IndexDescriptor::KeyPatternString() const {
  std::string out = "{";
  bool first = true;
  for (const IndexField& f : fields_) {
    if (!first) out += ", ";
    first = false;
    out += f.path;
    out += f.kind == IndexFieldKind::k2dsphere ? ": '2dsphere'" : ": 1";
  }
  out += "}";
  return out;
}

}  // namespace stix::index
